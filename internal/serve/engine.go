package serve

import (
	"context"
	"errors"
	"sort"

	"dgcl"
)

// engine executes batched forwards over the partitioned model and owns the
// failover half of serving: when a collective reports a fail-stop dead
// device, recover degrades the system onto the survivors (System.Degrade —
// compact renumbering, vertex reassignment, replan through the plan cache)
// and rebuilds the inference trainer over the degraded cluster, so the next
// forward answers from the degraded replica.
type engine struct {
	sys      *dgcl.System
	model    *dgcl.Model // authoritative copy for rebuilds; never aliased
	features *dgcl.Matrix
	targets  *dgcl.Matrix // zero-filled; the serve path never computes a loss
	tr       *dgcl.Trainer
	rows     int
}

func newEngine(sys *dgcl.System, model *dgcl.Model, features *dgcl.Matrix) (*engine, error) {
	out := model.Layers[len(model.Layers)-1].OutDim()
	e := &engine{
		sys:      sys,
		model:    model.Clone(),
		features: features,
		targets:  dgcl.NewMatrix(features.Rows, out),
		rows:     features.Rows,
	}
	return e, e.rebuild()
}

// rebuild shards the current model and features over the system's active
// cluster (full fabric, or the degraded one after a recovery).
func (e *engine) rebuild() error {
	tr, err := e.sys.NewTrainer(e.model, e.features, e.targets)
	if err != nil {
		return err
	}
	e.tr = tr
	return nil
}

// setModel swaps the served weights (cloned) and rebuilds the replicas.
func (e *engine) setModel(m *dgcl.Model) error {
	e.model = m.Clone()
	return e.rebuild()
}

// forward runs one batched forward pass over every partition and returns the
// global embedding matrix (one row per vertex).
func (e *engine) forward(ctx context.Context) (*dgcl.Matrix, error) {
	return e.tr.ForwardContext(ctx, e.rows)
}

// recover degrades onto the survivors and rebuilds the inference replicas.
func (e *engine) recover(down []int) error {
	if err := e.sys.Degrade(down); err != nil {
		return err
	}
	return e.rebuild()
}

// downDevices extracts the fail-stop dead devices (external ids, ascending)
// from a failed collective: the health tracker's verdicts when installed,
// otherwise the DeviceDownError blames in the per-GPU errors. An empty
// result means the failure was not a device death (nothing to degrade).
func downDevices(err error) []int {
	if err == nil || !errors.Is(err, dgcl.ErrDeviceDown) {
		return nil
	}
	var ce *dgcl.CollectiveError
	if !errors.As(err, &ce) {
		var dd *dgcl.DeviceDownError
		if errors.As(err, &dd) {
			return []int{dd.Device}
		}
		return nil
	}
	if len(ce.Down) > 0 {
		return append([]int(nil), ce.Down...)
	}
	seen := make(map[int]bool)
	var out []int
	for _, pe := range ce.PerGPU {
		var dd *dgcl.DeviceDownError
		if pe != nil && errors.As(pe, &dd) && !seen[dd.Device] {
			seen[dd.Device] = true
			out = append(out, dd.Device)
		}
	}
	sort.Ints(out)
	return out
}
