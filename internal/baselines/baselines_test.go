package baselines

import (
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

func mkRelation(t testing.TB, g *graph.Graph, k int, seed int64) (*comm.Relation, *partition.Partition) {
	t.Helper()
	p, err := partition.KWay(g, k, partition.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return rel, p
}

func TestPlanP2PValid(t *testing.T) {
	g := graph.CommunityGraph(600, 16, 6, 0.8, 1)
	rel, _ := mkRelation(t, g, 8, 1)
	p := PlanP2P(rel, 1024)
	if err := p.Validate(rel); err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 1 {
		t.Fatalf("p2p must be single stage, got %d", p.NumStages())
	}
	if p.Algorithm != "p2p" {
		t.Fatalf("algorithm=%q", p.Algorithm)
	}
}

func TestPlanP2PEmptyRelation(t *testing.T) {
	g := graph.Ring(8)
	p := partition.Range(g, 1)
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanP2P(rel, 64)
	if plan.NumStages() != 0 {
		t.Fatal("single-GPU relation needs no transfers")
	}
}

func TestSwapPlanVolumes(t *testing.T) {
	g := graph.Ring(8)
	p := partition.Range(g, 4)
	rel, _ := comm.Build(g, p)
	topo := topology.SubDGX1(4)
	sp, err := PlanSwap(rel, topo, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Each GPU owns 2 vertices and needs 2 remote vertices.
	for d := 0; d < 4; d++ {
		if sp.WriteBytes[d] != 200 {
			t.Fatalf("write[%d]=%d want 200", d, sp.WriteBytes[d])
		}
		if sp.ReadBytes[d] != 200 {
			t.Fatalf("read[%d]=%d want 200", d, sp.ReadBytes[d])
		}
	}
	cost, err := SwapCost(sp, topo)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("swap cost must be positive")
	}
}

func TestSwapDumpsAllLocalsNotJustNeeded(t *testing.T) {
	// The defining inefficiency of swap (§7: "it needs to swap all vertex
	// embeddings to main memory"): write volume is the full local set even
	// when almost nothing is needed remotely.
	g := graph.Grid2D(20, 20) // low cut
	rel, _ := mkRelation(t, g, 4, 2)
	topo := topology.SubDGX1(4)
	sp, _ := PlanSwap(rel, topo, 100)
	var writes, reads int64
	for d := 0; d < 4; d++ {
		writes += sp.WriteBytes[d]
		reads += sp.ReadBytes[d]
	}
	if writes != int64(g.NumVertices())*100 {
		t.Fatalf("writes=%d want all %d vertices", writes, g.NumVertices())
	}
	if reads >= writes {
		t.Fatalf("on a low-cut graph reads (%d) should be far below writes (%d)", reads, writes)
	}
}

func TestSwapWorseThanSPSTOnSparseGraphs(t *testing.T) {
	// Figure 7: swap has the worst communication time on sparse graphs.
	g := graph.WebGoogle.Generate(512, 3)
	rel, _ := mkRelation(t, g, 8, 3)
	topo := topology.DGX1()
	sp, err := PlanSwap(rel, topo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	swapCost, err := SwapCost(sp, topo)
	if err != nil {
		t.Fatal(err)
	}
	_, state, err := core.PlanSPST(rel, topo, 1024, core.SPSTOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if swapCost <= state.Cost() {
		t.Fatalf("swap %v should be slower than SPST %v on sparse graphs", swapCost, state.Cost())
	}
}

func TestSwapCrossMachine(t *testing.T) {
	g := graph.CommunityGraph(800, 10, 4, 0.8, 4)
	p, err := partition.Hierarchical(g, []int{8, 8}, partition.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := comm.Build(g, p)
	topo := topology.TwoMachineDGX1()
	sp, err := PlanSwap(rel, topo, 100)
	if err != nil {
		t.Fatal(err)
	}
	var cross int64
	for _, b := range sp.CrossBytes {
		cross += b
	}
	if cross == 0 {
		t.Fatal("two-machine swap must ship bytes across machines")
	}
}

func TestReplicationFactorGrowsWithHopsAndGPUs(t *testing.T) {
	// Figure 4: replication factor increases with both GPU count and layer
	// count.
	g := graph.WebGoogle.Generate(512, 5)
	var prevHop float64
	for hops := 1; hops <= 3; hops++ {
		p, err := partition.KWay(g, 8, partition.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ri := Replication(g, p, hops)
		if ri.Factor < prevHop {
			t.Fatalf("replication factor decreased with hops: %v after %v", ri.Factor, prevHop)
		}
		prevHop = ri.Factor
		if ri.Factor < 1 {
			t.Fatalf("factor %v below 1", ri.Factor)
		}
	}
	var prevGPU float64
	for _, k := range []int{2, 4, 8} {
		p, _ := partition.KWay(g, k, partition.Options{Seed: 5})
		ri := Replication(g, p, 2)
		if ri.Factor+0.05 < prevGPU {
			t.Fatalf("replication factor decreased with GPUs: %v after %v", ri.Factor, prevGPU)
		}
		prevGPU = ri.Factor
	}
}

func TestReplicationDenseGraphCoversEverything(t *testing.T) {
	// Reddit-like graphs: 2-hop neighborhoods cover nearly the whole graph,
	// so the factor approaches the GPU count.
	g := graph.Reddit.Generate(512, 6)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 6})
	ri := Replication(g, p, 2)
	if ri.Factor < 4 {
		t.Fatalf("dense-graph 2-hop replication factor %v should approach 8", ri.Factor)
	}
}

func TestReplicationMemoryCheck(t *testing.T) {
	g := graph.Ring(64)
	p, _ := partition.KWay(g, 4, partition.Options{Seed: 7})
	ri := Replication(g, p, 1)
	if !ri.FitsMemory(1<<30, 1024) {
		t.Fatal("tiny graph must fit 1GB")
	}
	if ri.FitsMemory(100, 1024) {
		t.Fatal("must not fit 100 bytes")
	}
	if ri.ComputeBlowup() != ri.Factor {
		t.Fatal("blowup should equal factor")
	}
}

func TestSwapKMismatch(t *testing.T) {
	g := graph.Ring(16)
	rel, _ := mkRelation(t, g, 4, 8)
	if _, err := PlanSwap(rel, topology.DGX1(), 64); err == nil {
		t.Fatal("expected K mismatch error")
	}
}

func TestPlanSteinerValidAndStaged(t *testing.T) {
	g := graph.CommunityGraph(800, 16, 6, 0.8, 21)
	rel, _ := mkRelation(t, g, 8, 21)
	plan, err := PlanSteiner(rel, topology.DGX1(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(rel); err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != "steiner" {
		t.Fatalf("algorithm %q", plan.Algorithm)
	}
}

func TestSteinerIgnoresContention(t *testing.T) {
	// The §5.2 argument: static-cost Steiner trees pile load onto the
	// statically-fastest links because they cannot see contention or stage
	// maxima; SPST's load-aware incremental costs must beat (or match) them
	// under the paper's cost model on a contended workload.
	g := graph.Reddit.Generate(512, 22)
	rel, _ := mkRelation(t, g, 8, 22)
	topo := topology.DGX1()
	m, err := core.NewModel(topo)
	if err != nil {
		t.Fatal(err)
	}
	steiner, err := PlanSteiner(rel, topo, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := steiner.Validate(rel); err != nil {
		t.Fatal(err)
	}
	_, spstState, err := core.PlanSPST(rel, topo, 2048, core.SPSTOptions{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	steinerCost := core.CostOfPlan(m, steiner)
	if spstState.Cost() > steinerCost*1.02 {
		t.Fatalf("SPST %v should not lose to static Steiner %v", spstState.Cost(), steinerCost)
	}
	t.Logf("SPST %.4g vs Steiner %.4g (%.2fx)", spstState.Cost(), steinerCost, steinerCost/spstState.Cost())
}

func TestSteinerKMismatch(t *testing.T) {
	g := graph.Ring(16)
	rel, _ := mkRelation(t, g, 4, 23)
	if _, err := PlanSteiner(rel, topology.DGX1(), 64); err == nil {
		t.Fatal("expected K mismatch error")
	}
}
