package baselines

import (
	"fmt"
	"math"
	"sort"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/topology"
)

// PlanSteiner is the §5.2 strawman: route each vertex class along an
// approximate Steiner tree computed with *static* per-byte link costs
// (1/bandwidth of the channel bottleneck), using the classic
// nearest-terminal 2-approximation over the metric closure. It ignores what
// the paper's cost model knows — that concurrent transfers contend on
// shared hops and that stage times are maxima, not sums — so its plans load
// the fast links blindly. Comparing its §5.1-modeled cost against SPST's
// quantifies why GNN communication planning is not a Steiner tree problem.
func PlanSteiner(rel *comm.Relation, topo *topology.Topology, bytesPerVertex int64) (*core.Plan, error) {
	k := topo.NumGPUs()
	if k != rel.K {
		return nil, fmt.Errorf("baselines: topology has %d GPUs, relation %d", k, rel.K)
	}
	m, err := core.NewModel(topo)
	if err != nil {
		return nil, err
	}
	// Static per-byte direct costs, then all-pairs shortest paths
	// (Floyd-Warshall; k <= 16) with next-hop reconstruction.
	dist := make([][]float64, k)
	next := make([][]int, k)
	for i := 0; i < k; i++ {
		dist[i] = make([]float64, k)
		next[i] = make([]int, k)
		for j := 0; j < k; j++ {
			switch {
			case i == j:
				dist[i][j] = 0
				next[i][j] = j
			default:
				dist[i][j] = m.ChannelTime(i, j, 1)
				next[i][j] = j
			}
		}
	}
	for via := 0; via < k; via++ {
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if d := dist[i][via] + dist[via][j]; d < dist[i][j] {
					dist[i][j] = d
					next[i][j] = next[i][via]
				}
			}
		}
	}

	type stagedEdge struct {
		stage, src, dst int
	}
	stageTransfers := map[stagedEdge][]int32{}
	maxStage := 0

	inTree := make([]bool, k)
	depth := make([]int, k)
	for _, cl := range rel.Classes() {
		for i := range inTree {
			inTree[i] = false
		}
		inTree[cl.Src] = true
		depth[cl.Src] = 0
		remaining := map[int]bool{}
		for _, d := range cl.Dsts {
			remaining[d] = true
		}
		for len(remaining) > 0 {
			// Nearest remaining terminal to the current tree.
			bestFrom, bestTo, bestD := -1, -1, math.Inf(1)
			for from := 0; from < k; from++ {
				if !inTree[from] {
					continue
				}
				for to := range remaining {
					if dist[from][to] < bestD {
						bestFrom, bestTo, bestD = from, to, dist[from][to]
					}
				}
			}
			if bestFrom < 0 {
				return nil, fmt.Errorf("baselines: unreachable terminal for class src=%d", cl.Src)
			}
			// Expand the metric-closure path and graft it onto the tree.
			for cur := bestFrom; cur != bestTo; {
				nxt := next[cur][bestTo]
				if !inTree[nxt] {
					e := stagedEdge{stage: depth[cur], src: cur, dst: nxt}
					stageTransfers[e] = append(stageTransfers[e], cl.Vertices...)
					inTree[nxt] = true
					depth[nxt] = depth[cur] + 1
					if depth[nxt] > maxStage {
						maxStage = depth[nxt]
					}
					delete(remaining, nxt)
				}
				cur = nxt
			}
		}
	}

	plan := core.NewPlan(k, bytesPerVertex, "steiner")
	plan.Stages = make([][]core.Transfer, maxStage)
	edges := make([]stagedEdge, 0, len(stageTransfers))
	for e := range stageTransfers {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.stage != b.stage {
			return a.stage < b.stage
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	for _, e := range edges {
		plan.Stages[e.stage] = append(plan.Stages[e.stage], core.Transfer{
			Src: e.src, Dst: e.dst, Vertices: stageTransfers[e],
		})
	}
	return plan, nil
}
