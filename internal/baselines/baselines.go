// Package baselines implements the three communication schemes the paper
// compares DGCL against (§7): peer-to-peer direct transfers (as in ROC/Lux),
// swap through CPU main memory with chain-transfer (as in NeuGraph), and
// replication of K-hop neighborhoods that eliminates communication entirely
// at the price of memory and recomputation (as in Medusa).
package baselines

import (
	"fmt"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

// PlanP2P builds the peer-to-peer plan: every GPU pair exchanges its Vij
// directly over its direct channel, all concurrently in a single stage. This
// is the strategy whose contention and slow-link usage §3 analyzes.
func PlanP2P(rel *comm.Relation, bytesPerVertex int64) *core.Plan {
	p := core.NewPlan(rel.K, bytesPerVertex, "p2p")
	var stage []core.Transfer
	for src := 0; src < rel.K; src++ {
		for dst := 0; dst < rel.K; dst++ {
			if len(rel.Send[src][dst]) > 0 {
				stage = append(stage, core.Transfer{Src: src, Dst: dst, Vertices: rel.Send[src][dst]})
			}
		}
	}
	if len(stage) > 0 {
		p.Stages = append(p.Stages, stage)
	}
	return p
}

// SwapPlan describes the NeuGraph-style exchange through host memory: after
// each layer every GPU dumps all of its local vertex embeddings to its
// machine's main memory, then every GPU loads the remote embeddings it
// needs. With the chain-transfer optimization the dump and the load are
// pipelined per-partition, which we model as two bulk phases bottlenecked by
// each GPU's PCIe path.
type SwapPlan struct {
	K          int
	WriteBytes []int64 // per GPU: local embeddings dumped to host memory
	ReadBytes  []int64 // per GPU: remote embeddings loaded from host memory
	CrossBytes []int64 // per machine: bytes shipped to the other machines' memory
}

// PlanSwap builds the swap plan for the relation. NeuGraph targets a single
// machine; on multi-machine topologies the host memories additionally
// exchange the embeddings needed across machines (CrossBytes), which the
// cost model charges to the NIC path.
func PlanSwap(rel *comm.Relation, topo *topology.Topology, bytesPerVertex int64) (*SwapPlan, error) {
	if topo.NumGPUs() != rel.K {
		return nil, fmt.Errorf("baselines: topology has %d GPUs, relation %d", topo.NumGPUs(), rel.K)
	}
	sp := &SwapPlan{
		K:          rel.K,
		WriteBytes: make([]int64, rel.K),
		ReadBytes:  make([]int64, rel.K),
		CrossBytes: make([]int64, topo.NumMachines()),
	}
	for d := 0; d < rel.K; d++ {
		sp.WriteBytes[d] = int64(len(rel.Local[d])) * bytesPerVertex
		sp.ReadBytes[d] = int64(len(rel.Remote[d])) * bytesPerVertex
	}
	if topo.NumMachines() > 1 {
		for d := 0; d < rel.K; d++ {
			md := topo.GPUMachine(d)
			for _, v := range rel.Remote[d] {
				src := int(rel.Owner[v])
				if topo.GPUMachine(src) != md {
					sp.CrossBytes[topo.GPUMachine(src)] += bytesPerVertex
				}
			}
		}
	}
	return sp, nil
}

// SwapCost evaluates the modeled time of the swap exchange on the topology:
// phase 1 is the concurrent dump of all local embeddings over each GPU's
// host path, phase 2 the concurrent load of remote embeddings, plus a
// cross-machine phase when host memories must synchronize. Contention on
// shared PCIe hops is accounted exactly as in the §5.1 cost model.
func SwapCost(sp *SwapPlan, topo *topology.Topology) (float64, error) {
	hopVolWrite := map[int]float64{}
	hopVolRead := map[int]float64{}
	for d := 0; d < sp.K; d++ {
		ch, err := topo.HostChannel(d)
		if err != nil {
			return 0, err
		}
		for _, h := range ch.Hops {
			hopVolWrite[h] += float64(sp.WriteBytes[d])
			hopVolRead[h] += float64(sp.ReadBytes[d])
		}
	}
	phase := func(vol map[int]float64) float64 {
		var worst float64
		for h, v := range vol {
			if t := v / topo.Conn(h).Bandwidth; t > worst {
				worst = t
			}
		}
		return worst
	}
	total := phase(hopVolWrite) + phase(hopVolRead)
	// Cross-machine host-to-host synchronization over the NIC fabric.
	for _, bytes := range sp.CrossBytes {
		if bytes > 0 {
			total += float64(bytes) / topology.IB.Bandwidth()
		}
	}
	return total, nil
}

// ReplicationInfo summarizes the Medusa-style replication strategy for a
// K-layer GNN: every GPU stores its own partition plus the khop-hop
// in-neighborhood of it, so no embeddings ever cross GPUs.
type ReplicationInfo struct {
	Hops      int
	PerGPU    []int   // vertices stored per GPU (owned + replicated)
	Factor    float64 // total stored / |V| (Figure 4's replication factor)
	MaxStored int     // largest per-GPU vertex count
}

// Replication computes the replication sets for a khop-layer GNN under the
// given partition.
func Replication(g *graph.Graph, p *partition.Partition, khop int) *ReplicationInfo {
	members := p.Members()
	info := &ReplicationInfo{Hops: khop, PerGPU: make([]int, p.K)}
	var total int
	for d := 0; d < p.K; d++ {
		stored := len(g.KHopNeighborhood(members[d], khop, true))
		info.PerGPU[d] = stored
		total += stored
		if stored > info.MaxStored {
			info.MaxStored = stored
		}
	}
	if n := g.NumVertices(); n > 0 {
		info.Factor = float64(total) / float64(n)
	}
	return info
}

// FitsMemory reports whether the replicated working set fits in perGPUBytes
// of device memory, given bytesPerVertexResident (features + activations +
// gradients per vertex across layers).
func (ri *ReplicationInfo) FitsMemory(perGPUBytes int64, bytesPerVertexResident int64) bool {
	return int64(ri.MaxStored)*bytesPerVertexResident <= perGPUBytes
}

// ComputeBlowup returns the factor by which per-GPU computation grows versus
// non-replicated partitioning with perfect balance: replicated vertices are
// recomputed on every GPU that stores them.
func (ri *ReplicationInfo) ComputeBlowup() float64 {
	return ri.Factor
}
