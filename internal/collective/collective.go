// Package collective implements the regular collective operations (ring
// allreduce, ring allgather, tree broadcast) that libraries like NCCL
// provide for data-parallel DNN training. The paper's §3 argues these do
// not fit GNN embedding passing — every GPU needs a *different* subset of
// vertices, while collectives assume uniform all-to-all data — and §8.2
// contrasts DGCL with them directly. This package makes that comparison
// concrete: it supplies (a) executable collectives used for model-gradient
// synchronization in the trainer, and (b) cost models over the same fabric
// abstraction, so experiments can quantify how much a regular allgather
// overshoots DGCL's planned exchange.
package collective

import (
	"fmt"

	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// RingAllreduce sums the same-shaped matrices of all workers and leaves the
// sum in every worker's matrix, using the bandwidth-optimal two-phase ring
// (reduce-scatter + allgather), executed faithfully chunk by chunk so tests
// can verify the data movement pattern, not just the result.
func RingAllreduce(bufs []*tensor.Matrix) error {
	k := len(bufs)
	if k == 0 {
		return fmt.Errorf("collective: no workers")
	}
	n := len(bufs[0].Data)
	for i, b := range bufs {
		if len(b.Data) != n {
			return fmt.Errorf("collective: worker %d has %d elements, worker 0 has %d", i, len(b.Data), n)
		}
	}
	if k == 1 {
		return nil
	}
	// Chunk c of worker w: [start(c), start(c+1)).
	start := func(c int) int { return c * n / k }
	// Phase 1: reduce-scatter. In step s, worker w sends chunk (w-s) to
	// worker w+1, which accumulates. After k-1 steps, worker w holds the
	// full sum of chunk (w+1).
	for s := 0; s < k-1; s++ {
		// Simultaneous ring step: compute all sends from a snapshot to model
		// the synchronous ring (avoids order dependence).
		type msg struct {
			dst, chunk int
			data       []float32
		}
		msgs := make([]msg, 0, k)
		for w := 0; w < k; w++ {
			c := ((w-s)%k + k) % k
			lo, hi := start(c), start(c+1)
			data := make([]float32, hi-lo)
			copy(data, bufs[w].Data[lo:hi])
			msgs = append(msgs, msg{dst: (w + 1) % k, chunk: c, data: data})
		}
		for _, m := range msgs {
			lo := start(m.chunk)
			for i, v := range m.data {
				bufs[m.dst].Data[lo+i] += v
			}
		}
	}
	// Phase 2: allgather. Worker w owns the reduced chunk (w+1); circulate.
	for s := 0; s < k-1; s++ {
		type msg struct {
			dst, chunk int
			data       []float32
		}
		msgs := make([]msg, 0, k)
		for w := 0; w < k; w++ {
			c := ((w+1-s)%k + k) % k
			lo, hi := start(c), start(c+1)
			data := make([]float32, hi-lo)
			copy(data, bufs[w].Data[lo:hi])
			msgs = append(msgs, msg{dst: (w + 1) % k, chunk: c, data: data})
		}
		for _, m := range msgs {
			lo := start(m.chunk)
			copy(bufs[m.dst].Data[lo:lo+len(m.data)], m.data)
		}
	}
	return nil
}

// RingAllgather concatenates every worker's rows into each worker's output:
// out[w] = vstack(in[0] ... in[k-1]). Inputs may have different row counts
// (rank sizes); columns must agree.
func RingAllgather(in []*tensor.Matrix) ([]*tensor.Matrix, error) {
	k := len(in)
	if k == 0 {
		return nil, fmt.Errorf("collective: no workers")
	}
	cols := in[0].Cols
	total := 0
	for i, b := range in {
		if b.Cols != cols {
			return nil, fmt.Errorf("collective: worker %d has %d cols, worker 0 has %d", i, b.Cols, cols)
		}
		total += b.Rows
	}
	out := make([]*tensor.Matrix, k)
	for w := 0; w < k; w++ {
		out[w] = tensor.New(total, cols)
		row := 0
		for r := 0; r < k; r++ {
			copy(out[w].Data[row*cols:], in[r].Data)
			row += in[r].Rows
		}
	}
	return out, nil
}

// RingAllreduceTime models the wall time of a bandwidth-optimal ring
// allreduce of `bytes` per worker over the fabric: 2(k-1)/k × bytes over the
// slowest link of the ring formed by GPU order 0..k-1.
func RingAllreduceTime(topo *topology.Topology, bytes int64) (float64, error) {
	k := topo.NumGPUs()
	if k < 2 {
		return 0, nil
	}
	slowest := 1e30
	for w := 0; w < k; w++ {
		ch, err := topo.GPUChannel(w, (w+1)%k)
		if err != nil {
			return 0, err
		}
		if bw := ch.Bottleneck(topo); bw < slowest {
			slowest = bw
		}
	}
	chunk := float64(bytes) / float64(k)
	steps := float64(2 * (k - 1))
	return steps * chunk / slowest, nil
}

// FullAllgatherBytes returns the bytes a regular (NCCL-style) allgather
// moves to satisfy GNN embedding passing: every GPU must receive every
// other GPU's full partition, because the collective cannot subset. Compare
// with a plan's TotalBytes to quantify the overshoot the paper's §3
// describes.
func FullAllgatherBytes(partSizes []int, bytesPerVertex int64) int64 {
	k := len(partSizes)
	var total int64
	for _, sz := range partSizes {
		total += int64(sz) * bytesPerVertex * int64(k-1)
	}
	return total
}
