package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

func TestRingAllreduceSums(t *testing.T) {
	k, n := 4, 10
	bufs := make([]*tensor.Matrix, k)
	want := make([]float64, n)
	for w := 0; w < k; w++ {
		bufs[w] = tensor.New(1, n).FillRandom(int64(w))
		for i, v := range bufs[w].Data {
			want[i] += float64(v)
		}
	}
	if err := RingAllreduce(bufs); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < k; w++ {
		for i := range want {
			if math.Abs(float64(bufs[w].Data[i])-want[i]) > 1e-4 {
				t.Fatalf("worker %d elem %d: %v want %v", w, i, bufs[w].Data[i], want[i])
			}
		}
	}
}

func TestRingAllreduceEdgeCases(t *testing.T) {
	if err := RingAllreduce(nil); err == nil {
		t.Fatal("empty worker set must fail")
	}
	one := []*tensor.Matrix{tensor.New(1, 3).FillRandom(1)}
	orig := one[0].Clone()
	if err := RingAllreduce(one); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(one[0], orig) != 0 {
		t.Fatal("single worker must be identity")
	}
	bad := []*tensor.Matrix{tensor.New(1, 3), tensor.New(1, 4)}
	if err := RingAllreduce(bad); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

// Property: allreduce result equals the naive sum for random worker counts
// and sizes, including sizes not divisible by k.
func TestPropertyRingAllreduce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(7)
		n := 1 + rng.Intn(40)
		bufs := make([]*tensor.Matrix, k)
		want := make([]float64, n)
		for w := 0; w < k; w++ {
			bufs[w] = tensor.New(1, n).FillRandom(seed + int64(w))
			for i, v := range bufs[w].Data {
				want[i] += float64(v)
			}
		}
		if err := RingAllreduce(bufs); err != nil {
			return false
		}
		for w := 0; w < k; w++ {
			for i := range want {
				if math.Abs(float64(bufs[w].Data[i])-want[i]) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllgather(t *testing.T) {
	in := []*tensor.Matrix{
		tensor.FromData(2, 2, []float32{1, 2, 3, 4}),
		tensor.FromData(1, 2, []float32{5, 6}),
		tensor.FromData(2, 2, []float32{7, 8, 9, 10}),
	}
	out, err := RingAllgather(in)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if out[w].Rows != 5 {
			t.Fatalf("worker %d rows %d", w, out[w].Rows)
		}
		if out[w].At(0, 0) != 1 || out[w].At(2, 0) != 5 || out[w].At(4, 1) != 10 {
			t.Fatalf("worker %d content %v", w, out[w].Data)
		}
	}
	if _, err := RingAllgather(nil); err == nil {
		t.Fatal("empty must fail")
	}
	if _, err := RingAllgather([]*tensor.Matrix{tensor.New(1, 2), tensor.New(1, 3)}); err == nil {
		t.Fatal("column mismatch must fail")
	}
}

func TestRingAllreduceTimeModel(t *testing.T) {
	topo := topology.DGX1()
	tm, err := RingAllreduceTime(topo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Fatal("time must be positive")
	}
	// Doubling bytes doubles time.
	tm2, _ := RingAllreduceTime(topo, 1<<21)
	if math.Abs(tm2-2*tm)/tm > 1e-9 {
		t.Fatalf("not linear: %v vs %v", tm, tm2)
	}
	// A two-machine ring crossing IB is slower than the single machine.
	tm16, _ := RingAllreduceTime(topology.TwoMachineDGX1(), 1<<20)
	if tm16 <= tm {
		t.Fatalf("16-GPU IB ring %v should be slower than DGX-1 ring %v", tm16, tm)
	}
	// Single GPU: free.
	if tm1, _ := RingAllreduceTime(topology.SubDGX1(1), 1<<20); tm1 != 0 {
		t.Fatal("single GPU allreduce should be free")
	}
}

func TestFullAllgatherBytesOvershoot(t *testing.T) {
	// 4 parts of 100 vertices each at 4 bytes: collective allgather moves
	// 4*100*4*3 bytes.
	got := FullAllgatherBytes([]int{100, 100, 100, 100}, 4)
	if got != 4800 {
		t.Fatalf("got %d", got)
	}
}
