package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgcl/internal/graph"
	"dgcl/internal/partition"
)

// fig1Graph reproduces the example graph of Figure 1 (12 vertices a..l) with
// the Figure 1b partitioning to 4 GPUs.
func fig1Graph() (*graph.Graph, *partition.Partition) {
	// a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10 l=11
	pairs := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 5}, {0, 9}, // a-b a-c a-d a-f a-j
		{1, 2},         // b-c
		{3, 4}, {3, 5}, // d-e d-f
		{5, 7},         // f-h
		{7, 8}, {7, 6}, // h-i h-g
		{9, 10}, {9, 11}, // j-k j-l
		{10, 11}, // k-l
		{4, 8},   // e-i
	}
	var edges []graph.Edge
	for _, p := range pairs {
		edges = append(edges, graph.Edge{Src: p[0], Dst: p[1]}, graph.Edge{Src: p[1], Dst: p[0]})
	}
	g := graph.MustFromEdges(12, edges, true)
	// GPU1 {a,b,c}, GPU2 {d,e,f}, GPU3 {g,h,i}, GPU4 {j,k,l} (0-based GPUs).
	assign := []int32{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	return g, &partition.Partition{K: 4, Assign: assign}
}

func TestBuildFigure1Example(t *testing.T) {
	g, p := fig1Graph()
	r, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper: V_l_1 = {a,b,c}, V_r_1 = {d,f,j} ∪ whatever else a's
	// neighbors need; the text says {d,f,j,k} — k is not adjacent to GPU 1 in
	// our reading, but d,f,j must be present.
	want := map[int32]bool{3: true, 5: true, 9: true}
	got := map[int32]bool{}
	for _, v := range r.Remote[0] {
		got[v] = true
	}
	for v := range want {
		if !got[v] {
			t.Fatalf("GPU0 remote set %v missing vertex %d", r.Remote[0], v)
		}
	}
	// GPU 2 (0-based 1) owns d and must send d to GPU0 since a-d edge crosses.
	found := false
	for _, v := range r.Send[1][0] {
		if v == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Send[1][0]=%v should contain d(3)", r.Send[1][0])
	}
}

func TestRelationOnRing(t *testing.T) {
	g := graph.Ring(8)
	p := partition.Range(g, 4) // parts {0,1},{2,3},{4,5},{6,7}
	r, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each part needs exactly its two ring neighbors from adjacent parts.
	for d := 0; d < 4; d++ {
		if len(r.Remote[d]) != 2 {
			t.Fatalf("part %d remote=%v want 2 vertices", d, r.Remote[d])
		}
	}
	// Part 0 needs vertex 7 (from part 3) and vertex 2 (from part 1).
	if r.Remote[0][0] != 2 || r.Remote[0][1] != 7 {
		t.Fatalf("part 0 remote = %v", r.Remote[0])
	}
	if r.TotalRemoteVertices() != 8 {
		t.Fatalf("total remote = %d", r.TotalRemoteVertices())
	}
}

func TestMulticastTasks(t *testing.T) {
	g, p := fig1Graph()
	r, _ := Build(g, p)
	tasks := r.MulticastTasks()
	byVertex := map[int32]Task{}
	for _, task := range tasks {
		byVertex[task.Vertex] = task
	}
	// Vertex a(0) is needed by GPU1 (d,f are its neighbors' owners... a's
	// consumers: d(GPU1) f(GPU1) j(GPU3)); so Dsts = {1,3}.
	ta, ok := byVertex[0]
	if !ok {
		t.Fatal("vertex a should be multicast")
	}
	if ta.Src != 0 || len(ta.Dsts) != 2 || ta.Dsts[0] != 1 || ta.Dsts[1] != 3 {
		t.Fatalf("task for a = %+v", ta)
	}
	// Every task's dsts exclude its src.
	for _, task := range tasks {
		for _, d := range task.Dsts {
			if d == task.Src {
				t.Fatalf("task %+v contains src in dsts", task)
			}
		}
	}
}

func TestClassesGroupCorrectly(t *testing.T) {
	g, p := fig1Graph()
	r, _ := Build(g, p)
	classes := r.Classes()
	totalVertices := 0
	seen := map[int32]bool{}
	for _, c := range classes {
		totalVertices += len(c.Vertices)
		for _, v := range c.Vertices {
			if seen[v] {
				t.Fatalf("vertex %d in two classes", v)
			}
			seen[v] = true
			if int(r.Owner[v]) != c.Src {
				t.Fatalf("class src mismatch for %d", v)
			}
		}
	}
	if totalVertices != len(r.MulticastTasks()) {
		t.Fatalf("classes cover %d vertices, tasks %d", totalVertices, len(r.MulticastTasks()))
	}
}

func TestPairVolume(t *testing.T) {
	g := graph.Ring(8)
	p := partition.Range(g, 4)
	r, _ := Build(g, p)
	vol := r.PairVolume()
	// Ring: each part sends 1 vertex to each neighbor part.
	if vol[0][1] != 1 || vol[1][0] != 1 || vol[0][2] != 0 {
		t.Fatalf("pair volumes: %v", vol)
	}
}

func TestLocalGraphs(t *testing.T) {
	g, p := fig1Graph()
	r, _ := Build(g, p)
	lgs := BuildLocalGraphs(g, r)
	if len(lgs) != 4 {
		t.Fatalf("local graphs = %d", len(lgs))
	}
	for d, lg := range lgs {
		if lg.NumLocal != len(r.Local[d]) || lg.NumRemote != len(r.Remote[d]) {
			t.Fatalf("gpu %d local graph sizes wrong", d)
		}
		// Every local edge corresponds to a global edge.
		for li := 0; li < lg.NumLocal; li++ {
			gu := lg.GlobalID[li]
			for _, lv := range lg.G.Neighbors(int32(li)) {
				gv := lg.GlobalID[lv]
				if !g.HasEdge(gu, gv) {
					t.Fatalf("gpu %d local edge (%d,%d) not in global graph", d, gu, gv)
				}
			}
			// Degree preserved: every global neighbor is present locally.
			if lg.G.Degree(int32(li)) != g.Degree(gu) {
				t.Fatalf("gpu %d vertex %d degree %d vs global %d", d, gu, lg.G.Degree(int32(li)), g.Degree(gu))
			}
		}
		// Remote vertices have no outgoing edges in the local graph.
		for ri := lg.NumLocal; ri < lg.NumLocal+lg.NumRemote; ri++ {
			if lg.G.Degree(int32(ri)) != 0 {
				t.Fatalf("gpu %d remote vertex has local out-edges", d)
			}
		}
	}
}

func TestLocalIndex(t *testing.T) {
	g, p := fig1Graph()
	r, _ := Build(g, p)
	lgs := BuildLocalGraphs(g, r)
	lg := lgs[0]
	for i, v := range lg.GlobalID {
		if lg.LocalIndex(v) != i {
			t.Fatalf("LocalIndex(%d) = %d want %d", v, lg.LocalIndex(v), i)
		}
	}
	if lg.LocalIndex(6) != -1 { // vertex g is 3 hops from GPU0's partition
		t.Fatal("LocalIndex of absent vertex should be -1")
	}
}

func TestBuildRejectsBadPartition(t *testing.T) {
	g := graph.Ring(4)
	bad := &partition.Partition{K: 2, Assign: []int32{0, 1, 5, 0}}
	if _, err := Build(g, bad); err == nil {
		t.Fatal("expected validation error")
	}
}

// Property: for random graphs and partitions the relation always validates
// and the sum of send volumes equals total remote vertices.
func TestPropertyRelationConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		g := graph.ErdosRenyi(n, int64(5*n), seed)
		k := 2 + rng.Intn(6)
		p, err := partition.KWay(g, k, partition.Options{Seed: seed})
		if err != nil {
			return false
		}
		r, err := Build(g, p)
		if err != nil || r.Validate() != nil {
			return false
		}
		var sendTotal int64
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				sendTotal += int64(len(r.Send[i][j]))
			}
		}
		return sendTotal == r.TotalRemoteVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the local graphs partition all global edges exactly once.
func TestPropertyLocalGraphsCoverEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		g := graph.ErdosRenyi(n, int64(4*n), seed)
		k := 2 + rng.Intn(4)
		p, _ := partition.KWay(g, k, partition.Options{Seed: seed})
		r, err := Build(g, p)
		if err != nil {
			return false
		}
		lgs := BuildLocalGraphs(g, r)
		var total int64
		for _, lg := range lgs {
			total += lg.G.NumEdges()
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildRelation(b *testing.B) {
	g := graph.Reddit.Generate(128, 1)
	p, err := partition.KWay(g, 8, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

// CommVolume (in package partition) and TotalRemoteVertices are
// definitionally the same quantity computed two ways; cross-check here where
// both packages are importable.
func TestCommVolumeMatchesRelation(t *testing.T) {
	g := graph.CommunityGraph(400, 12, 4, 0.8, 5)
	p, err := partition.KWay(g, 8, partition.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := partition.CommVolume(g, p), rel.TotalRemoteVertices(); got != want {
		t.Fatalf("CommVolume=%d, relation says %d", got, want)
	}
}
