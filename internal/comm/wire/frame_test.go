package wire

import (
	"strings"
	"testing"

	"dgcl/internal/core"
	"dgcl/internal/runtime"
	"dgcl/internal/tensor"
)

func dataFrame() *Frame {
	m := tensor.New(3, 4)
	for i := range m.Data {
		m.Data[i] = float32(i) * 0.5
	}
	return &Frame{
		Type:   frameData,
		Seq:    42,
		Key:    runtime.TransferKey{Stage: 2, Index: 7},
		Src:    1,
		Dst:    3,
		MsgSum: 0xDEADBEEFCAFE,
		Rows:   m,
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	want := dataFrame()
	buf := encodeFrame(nil, want)
	got, n, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Type != frameData || got.Seq != want.Seq || got.Key != want.Key ||
		got.Src != want.Src || got.Dst != want.Dst || got.MsgSum != want.MsgSum {
		t.Fatalf("header fields differ: got %+v want %+v", got, want)
	}
	if got.Rows.Rows != want.Rows.Rows || got.Rows.Cols != want.Rows.Cols {
		t.Fatalf("payload shape %dx%d, want %dx%d", got.Rows.Rows, got.Rows.Cols, want.Rows.Rows, want.Rows.Cols)
	}
	if diff := tensor.MaxAbsDiff(got.Rows, want.Rows); diff != 0 {
		t.Fatalf("payload differs by %v; float32 bits must survive the wire exactly", diff)
	}
}

func TestExchangeFrameRoundTripF32(t *testing.T) {
	m := tensor.New(2, 5).FillRandom(9)
	want := &Frame{Type: frameExchange, Seq: 7, Rank: 3, Kind: kindF32, TagSum: hashTag("grad.0.1"), Rows: m}
	got, _, err := DecodeFrame(encodeFrame(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != want.Rank || got.Kind != kindF32 || got.TagSum != want.TagSum || got.Seq != want.Seq {
		t.Fatalf("exchange header differs: got %+v", got)
	}
	if diff := tensor.MaxAbsDiff(got.Rows, want.Rows); diff != 0 {
		t.Fatalf("exchange payload differs by %v", diff)
	}
}

func TestExchangeFrameRoundTripF64(t *testing.T) {
	// A value with no short decimal expansion: the bits must survive exactly.
	want := &Frame{Type: frameExchange, Seq: 9, Rank: 0, Kind: kindF64, TagSum: hashTag("loss"), F64: []float64{1.0 / 3.0}}
	got, _, err := DecodeFrame(encodeFrame(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != kindF64 || len(got.F64) != 1 || got.F64[0] != want.F64[0] {
		t.Fatalf("f64 exchange round trip: got %+v", got)
	}
}

func TestCreditFrameRoundTrip(t *testing.T) {
	got, _, err := DecodeFrame(encodeFrame(nil, &Frame{Type: frameCredit, Credits: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != frameCredit || got.Credits != 5 {
		t.Fatalf("credit round trip: got %+v", got)
	}
}

func TestDecodeFrameRejectsTruncation(t *testing.T) {
	buf := encodeFrame(nil, dataFrame())
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeFrame(buf[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(buf))
		}
	}
}

func TestDecodeFrameRejectsBitFlips(t *testing.T) {
	clean := encodeFrame(nil, dataFrame())
	for i := range clean {
		buf := append([]byte(nil), clean...)
		buf[i] ^= 0x40
		f, _, err := DecodeFrame(buf)
		if err != nil {
			continue
		}
		// The frame checksum covers the entire body (including the carried
		// message seal), so the only survivable flips are the reserved
		// header bytes the parser tolerates.
		if i != 6 && i != 7 {
			t.Fatalf("bit flip at byte %d decoded cleanly: %+v", i, f)
		}
	}
}

func TestDecodeFrameRejectsOversizedBody(t *testing.T) {
	buf := encodeFrame(nil, dataFrame())
	buf[8] = 0xFF // length low byte
	buf[9] = 0xFF
	buf[10] = 0xFF
	buf[11] = 0x7F
	_, _, err := DecodeFrame(buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("oversized body length not capped: %v", err)
	}
}

func TestDecodeFrameRejectsDimPayloadMismatch(t *testing.T) {
	f := dataFrame()
	buf := encodeFrame(nil, f)
	// Claim one more row than the payload carries, repair the body checksum
	// so the dimension check (not the checksum) must catch it.
	body := buf[headerSize:]
	body[32] = byte(f.Rows.Rows + 1)
	patchBodySum(buf)
	_, _, err := DecodeFrame(buf)
	if err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("row/payload mismatch not rejected: %v", err)
	}
}

// patchBodySum recomputes the frame checksum after a test mutates the body.
func patchBodySum(buf []byte) {
	body := buf[headerSize:]
	buf[12] = 0
	sum := fnv64a(body)
	for i := 0; i < 8; i++ {
		buf[12+i] = byte(sum >> (8 * i))
	}
}

func TestPlanDigestDistinguishesPlans(t *testing.T) {
	p1 := &core.Plan{K: 4, BytesPerVertex: 64, Stages: [][]core.Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1, 2, 3}}},
	}}
	p2 := &core.Plan{K: 4, BytesPerVertex: 64, Stages: [][]core.Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1, 2, 4}}},
	}}
	if PlanDigest(p1) != PlanDigest(p1) {
		t.Fatal("PlanDigest is not deterministic")
	}
	if PlanDigest(p1) == PlanDigest(p2) {
		t.Fatal("distinct plans share a digest")
	}
	if PlanDigest(p1) == PlanDigest(&core.Plan{K: 4, BytesPerVertex: 64}) {
		t.Fatal("empty plan collides with populated plan")
	}
}
