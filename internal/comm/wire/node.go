package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dgcl/internal/core"
	"dgcl/internal/runtime"
	"dgcl/internal/tensor"
)

// errLinkDown marks a socket-level failure; transports translate it into a
// runtime.DeviceDownError for the endpoint behind the dead link, feeding the
// same fail-stop recovery path a crash schedule does.
var errLinkDown = errors.New("wire: link down")

// retireWindow is how many past collective sequence numbers keep their demux
// tables: a new collective retires tables older than this, recycling frames
// stranded by a failed collective. Collectives are issued in lockstep and at
// most a handful are ever concurrently in flight, so a small window is safe.
const retireWindow = 16

// NodeSpec is one row of a run's address table: where the node's data
// listener accepts connections and which client ranks it hosts.
type NodeSpec struct {
	Addr  string
	Ranks []int
}

// entryKey demuxes a frame within one collective sequence: data frames by
// transfer key, exchange frames by rank.
type entryKey struct {
	exch bool
	a, b int32
}

func dataKey(k runtime.TransferKey) entryKey {
	return entryKey{a: int32(k.Stage), b: int32(k.Index)}
}

func exchKey(rank int) entryKey { return entryKey{exch: true, a: int32(rank)} }

// entry is one demux slot: a FIFO of arrived frames plus a wakeup signal for
// the (single) waiting receiver.
type entry struct {
	q  []Frame
	ch chan struct{}
}

type seqTable struct {
	entries map[entryKey]*entry
}

// Node is one process's wire endpoint: it hosts a set of client ranks, keeps
// one pooled connection per peer node (reused across every collective of the
// run), and demuxes inbound frames by (sequence, transfer) to waiting
// receivers. It implements runtime.TransportProvider and
// runtime.PeerExchange.
type Node struct {
	cfg   Config
	id    int
	specs []NodeSpec
	owner map[int32]int // device id -> hosting node id
	ln    net.Listener
	links map[int]*link

	ids []int // compact rank -> external device id (nil = identity)

	pool  *runtime.MatrixPool
	bytes *bytePool

	seq atomic.Uint64

	mu     sync.Mutex
	tables map[uint64]*seqTable
	minSeq uint64

	readers   sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewNode wraps a pre-opened listener (so its address can be published
// before the full address table exists) as node id's endpoint. Call Connect
// with the complete table to form the mesh.
func NewNode(cfg Config, id int, ln net.Listener) *Node {
	return &Node{
		cfg:    cfg.withDefaults(),
		id:     id,
		ln:     ln,
		links:  make(map[int]*link),
		pool:   &runtime.MatrixPool{},
		bytes:  &bytePool{},
		tables: make(map[uint64]*seqTable),
		closed: make(chan struct{}),
	}
}

// Addr returns the data listener's address for the run's address table.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetDeviceIDs installs the compact-rank → external-device-id mapping for
// peer exchanges. After a degrade the address table (NodeSpec.Ranks, the
// owner map) keeps using external device ids while the trainer's exchange
// calls use compact ranks in [0, K'); this mapping bridges the two, exactly
// like the ids slice the cluster hands CollectiveTransport. Nil means
// identity (no degrade). Call before exchanging, never mid-exchange.
func (n *Node) SetDeviceIDs(ids []int) {
	n.ids = append([]int(nil), ids...)
}

// dev maps a compact rank to its external device id.
func (n *Node) dev(rank int) int32 {
	if n.ids == nil {
		return int32(rank)
	}
	return int32(n.ids[rank])
}

func (n *Node) isClosed() bool {
	select {
	case <-n.closed:
		return true
	default:
		return false
	}
}

// Close shears the whole endpoint down: the listener, every link, and every
// blocked sender/receiver. Peers observe connection failures and map this
// node's devices to DeviceDownError. It waits for the reader goroutines to
// exit (closing the sockets unblocks them immediately), so callers may run
// goroutine-leak checks right after. Close must not race Connect.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.closed)
		if n.ln != nil {
			n.ln.Close()
		}
		for _, l := range n.links {
			l.fail(errors.New("wire: node closed"))
		}
	})
	n.readers.Wait()
}

func (n *Node) checkHello(h hello, wantNode int) error {
	if wantNode >= 0 && int(h.nodeID) != wantNode {
		return fmt.Errorf("wire: handshake from node %d, want %d", h.nodeID, wantNode)
	}
	peer := int(h.nodeID)
	if peer < 0 || peer >= len(n.specs) || peer == n.id {
		return fmt.Errorf("wire: handshake from out-of-table node %d", h.nodeID)
	}
	if h.clusterID != n.cfg.ClusterID {
		return fmt.Errorf("wire: handshake cluster %q, want %q", h.clusterID, n.cfg.ClusterID)
	}
	if h.planSum != n.cfg.PlanSum {
		return fmt.Errorf("wire: handshake plan digest %#x, want %#x (peers compiled different plans)", h.planSum, n.cfg.PlanSum)
	}
	want := n.specs[peer].Ranks
	if len(h.ranks) != len(want) {
		return fmt.Errorf("wire: node %d claims %d ranks, table says %d", peer, len(h.ranks), len(want))
	}
	for i, r := range h.ranks {
		if int(r) != want[i] {
			return fmt.Errorf("wire: node %d rank table mismatch at %d: %d vs %d", peer, i, r, want[i])
		}
	}
	return nil
}

// Connect forms the full mesh against the address table: this node dials
// every lower-id peer and accepts a connection from every higher-id peer,
// each handshake carrying cluster ID, node identity, hosted ranks, and plan
// digest. On success one reader goroutine per link is running and the
// listener is closed (the mesh is complete; connections are pooled for the
// lifetime of the run).
func (n *Node) Connect(ctx context.Context, specs []NodeSpec) error {
	if n.id < 0 || n.id >= len(specs) {
		return fmt.Errorf("wire: node id %d outside %d-entry address table", n.id, len(specs))
	}
	n.specs = specs
	n.owner = make(map[int32]int)
	for id, sp := range specs {
		for _, r := range sp.Ranks {
			if prev, dup := n.owner[int32(r)]; dup {
				return fmt.Errorf("wire: rank %d hosted by both node %d and node %d", r, prev, id)
			}
			n.owner[int32(r)] = id
		}
	}
	myRanks := make([]int32, len(specs[n.id].Ranks))
	for i, r := range specs[n.id].Ranks {
		myRanks[i] = int32(r)
	}
	me := hello{nodeID: int32(n.id), clusterID: n.cfg.ClusterID, planSum: n.cfg.PlanSum, ranks: myRanks}
	hsT := n.cfg.HandshakeTimeout

	conns := make(map[int]net.Conn)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, 2)

	// Dial every lower-id peer: write our hello, then read theirs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for peer := 0; peer < n.id; peer++ {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", n.specs[peer].Addr)
			if err != nil {
				errs[0] = fmt.Errorf("wire: dial node %d: %w", peer, err)
				return
			}
			if err := writeHello(conn, me, hsT); err == nil {
				var ph hello
				if ph, err = readHello(conn, hsT); err == nil {
					err = n.checkHello(ph, peer)
				}
			}
			if err != nil {
				conn.Close()
				errs[0] = fmt.Errorf("wire: handshake with node %d: %w", peer, err)
				return
			}
			mu.Lock()
			conns[peer] = conn
			mu.Unlock()
		}
	}()

	// Accept every higher-id peer: read their hello, then write ours.
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(hsT)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		type deadliner interface{ SetDeadline(time.Time) error }
		if dl, ok := n.ln.(deadliner); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				errs[1] = err
				return
			}
		}
		for need := len(specs) - 1 - n.id; need > 0; need-- {
			conn, err := n.ln.Accept()
			if err != nil {
				errs[1] = fmt.Errorf("wire: accept: %w", err)
				return
			}
			ph, err := readHello(conn, hsT)
			if err == nil {
				err = n.checkHello(ph, -1)
			}
			if err == nil && int(ph.nodeID) < n.id {
				err = fmt.Errorf("wire: lower-id node %d dialed the wrong direction", ph.nodeID)
			}
			if err == nil {
				err = writeHello(conn, me, hsT)
			}
			if err != nil {
				conn.Close()
				errs[1] = fmt.Errorf("wire: handshake: %w", err)
				return
			}
			mu.Lock()
			conns[int(ph.nodeID)] = conn
			mu.Unlock()
		}
	}()
	wg.Wait()
	if err := errors.Join(errs[0], errs[1]); err != nil {
		for _, c := range conns {
			c.Close()
		}
		return err
	}
	for peer, conn := range conns {
		l := newLink(n, peer, conn)
		n.links[peer] = l
		n.readers.Add(1)
		go func(l *link) {
			defer n.readers.Done()
			l.readLoop()
		}(l)
	}
	n.ln.Close()
	return nil
}

// route delivers one inbound frame to its demux slot, creating the slot on
// demand (a peer running slightly ahead sends frames for a collective this
// process has not started yet). Frames for retired sequences are dropped and
// their payloads recycled.
func (n *Node) route(f Frame) {
	var k entryKey
	if f.Type == frameExchange {
		k = exchKey(int(f.Rank))
	} else {
		k = dataKey(f.Key)
	}
	n.mu.Lock()
	if f.Seq < n.minSeq || n.isClosed() {
		n.mu.Unlock()
		if f.Rows != nil {
			n.pool.Put(f.Rows)
		}
		return
	}
	e := n.entryLocked(f.Seq, k)
	e.q = append(e.q, f)
	n.mu.Unlock()
	select {
	case e.ch <- struct{}{}:
	default:
	}
}

func (n *Node) entryLocked(seq uint64, k entryKey) *entry {
	tbl := n.tables[seq]
	if tbl == nil {
		tbl = &seqTable{entries: make(map[entryKey]*entry)}
		n.tables[seq] = tbl
	}
	e := tbl.entries[k]
	if e == nil {
		e = &entry{ch: make(chan struct{}, 1)}
		tbl.entries[k] = e
	}
	return e
}

// retireBelow drops demux tables for sequences before floor, recycling any
// payloads a failed collective stranded.
func (n *Node) retireBelow(floor uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if floor <= n.minSeq {
		return
	}
	n.minSeq = floor
	for s, tbl := range n.tables {
		if s >= floor {
			continue
		}
		for _, e := range tbl.entries {
			for _, f := range e.q {
				if f.Rows != nil {
					n.pool.Put(f.Rows)
				}
			}
		}
		delete(n.tables, s)
	}
}

// await blocks until a frame lands in (seq, k), the context ends, the link
// to the remote endpoint dies (DeviceDownError for remoteDev), or this node
// itself is closed (DeviceDownError for selfDev — a killed node's own
// clients blame their own device, keeping health verdicts consistent on
// every process).
func (n *Node) await(ctx context.Context, seq uint64, k entryKey, down <-chan struct{}, remoteDev, selfDev int32) (Frame, error) {
	n.mu.Lock()
	e := n.entryLocked(seq, k)
	n.mu.Unlock()
	pop := func() (Frame, bool) {
		n.mu.Lock()
		defer n.mu.Unlock()
		if len(e.q) == 0 {
			return Frame{}, false
		}
		f := e.q[0]
		e.q = e.q[1:]
		return f, true
	}
	for {
		if f, ok := pop(); ok {
			return f, nil
		}
		select {
		case <-e.ch:
		case <-ctx.Done():
			return Frame{}, ctx.Err()
		case <-n.closed:
			return Frame{}, &runtime.DeviceDownError{Device: int(selfDev)}
		case <-down:
			// Drain a frame that raced the failure before giving up.
			if f, ok := pop(); ok {
				return f, nil
			}
			// A killed node has both its own closed channel and its sheared
			// links ready, and select picks among ready cases at random —
			// re-check self first so the blame stays deterministic (the
			// pipelined executor parks aggregators here mid-kill, where a
			// random remote blame would convict a healthy device).
			select {
			case <-n.closed:
				return Frame{}, &runtime.DeviceDownError{Device: int(selfDev)}
			default:
			}
			return Frame{}, &runtime.DeviceDownError{Device: int(remoteDev)}
		}
	}
}

// CollectiveTransport implements runtime.TransportProvider: each collective
// gets the next sequence number over the pooled mesh. Sequence counters stay
// aligned across processes because every process issues its collectives and
// exchanges in the same deterministic order.
func (n *Node) CollectiveTransport(stages [][]core.Transfer, ids []int) runtime.Transport {
	seq := n.seq.Add(1)
	if seq > retireWindow {
		n.retireBelow(seq - retireWindow)
	}
	return &meshTransport{seq: seq, nodes: map[int]*Node{n.id: n}, owner: n.owner, ids: ids, pool: n.pool}
}

// meshTransport routes one collective's transfers over a set of wire nodes.
// In a worker process the set is the single local node; the loopback fabric
// spans all of them (every client runs in-process, every cross-client
// payload still crosses a real socket). Send serializes before returning and
// Recv yields pooled buffers the caller owns, so it is a CopyingTransport
// and a MessageRecycler.
type meshTransport struct {
	seq   uint64
	nodes map[int]*Node
	owner map[int32]int
	ids   []int
	pool  *runtime.MatrixPool
}

// CopiesPayloads marks that Send serializes before returning.
func (t *meshTransport) CopiesPayloads() {}

// RecycleMessage takes a consumed receive buffer back into the wire pool.
func (t *meshTransport) RecycleMessage(msg runtime.Message) {
	if msg.Rows != nil {
		t.pool.Put(msg.Rows)
	}
}

func (t *meshTransport) dev(rank int) int32 {
	if t.ids == nil {
		return int32(rank)
	}
	return int32(t.ids[rank])
}

func (t *meshTransport) Send(ctx context.Context, key runtime.TransferKey, tr core.Transfer, msg runtime.Message) error {
	srcDev, dstDev := t.dev(tr.Src), t.dev(tr.Dst)
	srcNode := t.nodes[t.owner[srcDev]]
	if srcNode == nil {
		return fmt.Errorf("wire: %s: src device %d not hosted in this process", key, srcDev)
	}
	if srcNode.isClosed() {
		return &runtime.DeviceDownError{Device: int(srcDev)}
	}
	dstOwner, ok := t.owner[dstDev]
	if !ok {
		return fmt.Errorf("wire: %s: dst device %d not in the rank table", key, dstDev)
	}
	if dstOwner == srcNode.id {
		// Same-node transfer: copy into a pooled buffer and route locally
		// (identical ownership semantics to the socket path).
		buf := t.pool.Get(msg.Rows.Rows, msg.Rows.Cols)
		copy(buf.Data, msg.Rows.Data)
		srcNode.route(Frame{Type: frameData, Seq: t.seq, Key: key, Src: srcDev, Dst: dstDev, MsgSum: msg.Checksum, Rows: buf})
		return nil
	}
	lk := srcNode.links[dstOwner]
	if lk == nil {
		return fmt.Errorf("wire: %s: no link from node %d to node %d", key, srcNode.id, dstOwner)
	}
	need := headerSize + dataHeaderSize + 4*len(msg.Rows.Data)
	scratch := srcNode.bytes.get(need)[:0]
	scratch = encodeFrame(scratch, &Frame{Type: frameData, Seq: t.seq, Key: key, Src: srcDev, Dst: dstDev, MsgSum: msg.Checksum, Rows: msg.Rows})
	err := lk.sendFrame(ctx, scratch)
	srcNode.bytes.put(scratch)
	if err != nil {
		if errors.Is(err, errLinkDown) {
			if srcNode.isClosed() {
				return &runtime.DeviceDownError{Device: int(srcDev)}
			}
			return &runtime.DeviceDownError{Device: int(dstDev)}
		}
		return err
	}
	return nil
}

func (t *meshTransport) Recv(ctx context.Context, key runtime.TransferKey, tr core.Transfer) (runtime.Message, error) {
	srcDev, dstDev := t.dev(tr.Src), t.dev(tr.Dst)
	dstNode := t.nodes[t.owner[dstDev]]
	if dstNode == nil {
		return runtime.Message{}, fmt.Errorf("wire: %s: dst device %d not hosted in this process", key, dstDev)
	}
	var down <-chan struct{}
	if srcOwner := t.owner[srcDev]; srcOwner != dstNode.id {
		lk := dstNode.links[srcOwner]
		if lk == nil {
			return runtime.Message{}, fmt.Errorf("wire: %s: no link from node %d to node %d", key, dstNode.id, srcOwner)
		}
		down = lk.closed
	}
	f, err := dstNode.await(ctx, t.seq, dataKey(key), down, srcDev, dstDev)
	if err != nil {
		return runtime.Message{}, err
	}
	return runtime.Message{Rows: f.Rows, Checksum: f.MsgSum}, nil
}

// selfDev is the representative device this node blames when it is itself
// closed mid-exchange.
func (n *Node) selfDev() int32 {
	if len(n.specs[n.id].Ranks) > 0 {
		return int32(n.specs[n.id].Ranks[0])
	}
	return int32(n.id)
}

// broadcast sends one encoded exchange frame to every peer link.
func (n *Node) broadcast(ctx context.Context, f *Frame, need int) error {
	for peer, lk := range n.links {
		scratch := n.bytes.get(need)[:0]
		scratch = encodeFrame(scratch, f)
		err := lk.sendFrame(ctx, scratch)
		n.bytes.put(scratch)
		if err != nil {
			if errors.Is(err, errLinkDown) {
				return &runtime.DeviceDownError{Device: int(n.peerDev(peer))}
			}
			return err
		}
	}
	return nil
}

// peerDev is the representative device of a peer node (its first rank).
func (n *Node) peerDev(peer int) int32 {
	if len(n.specs[peer].Ranks) > 0 {
		return int32(n.specs[peer].Ranks[0])
	}
	return int32(peer)
}

// collect receives the exchange frame for every remotely-owned rank, checks
// the tag, and hands it to sink.
func (n *Node) collect(ctx context.Context, seq uint64, tagSum uint64, tag string, count int, sink func(rank int, f Frame) error) error {
	for r := 0; r < count; r++ {
		dev := n.dev(r)
		owner, ok := n.owner[dev]
		if !ok {
			return fmt.Errorf("wire: exchange %q: device %d (rank %d) not in the rank table", tag, dev, r)
		}
		if owner == n.id {
			continue
		}
		lk := n.links[owner]
		if lk == nil {
			return fmt.Errorf("wire: exchange %q: no link to node %d", tag, owner)
		}
		f, err := n.await(ctx, seq, exchKey(r), lk.closed, dev, n.selfDev())
		if err != nil {
			return err
		}
		if f.TagSum != tagSum {
			return fmt.Errorf("wire: exchange tag mismatch for rank %d (processes desynced; got %#x, want %#x for %q)", r, f.TagSum, tagSum, tag)
		}
		if err := sink(r, f); err != nil {
			return err
		}
	}
	return nil
}

// ExchangeMatrices implements runtime.PeerExchange: each process broadcasts
// its locally-owned entries and fills the rest from their owners. All
// processes issue the same tags in the same order, so the shared sequence
// counter keeps streams aligned.
func (n *Node) ExchangeMatrices(ctx context.Context, tag string, local []int, vals []*tensor.Matrix) error {
	seq := n.seq.Add(1)
	if seq > retireWindow {
		n.retireBelow(seq - retireWindow)
	}
	ts := hashTag(tag)
	for _, r := range local {
		m := vals[r]
		need := headerSize + exchangeHeaderSize + 4*len(m.Data)
		f := Frame{Type: frameExchange, Seq: seq, Rank: int32(r), Kind: kindF32, TagSum: ts, Rows: m}
		if err := n.broadcast(ctx, &f, need); err != nil {
			return err
		}
	}
	return n.collect(ctx, seq, ts, tag, len(vals), func(r int, f Frame) error {
		if f.Rows == nil || f.Rows.Rows != vals[r].Rows || f.Rows.Cols != vals[r].Cols {
			return fmt.Errorf("wire: exchange %q: rank %d payload shape mismatch", tag, r)
		}
		copy(vals[r].Data, f.Rows.Data)
		n.pool.Put(f.Rows)
		return nil
	})
}

// ExchangeFloat64s implements runtime.PeerExchange for per-rank scalars
// (losses), preserving the exact float64 bits so rank-ordered sums stay
// bit-identical across processes.
func (n *Node) ExchangeFloat64s(ctx context.Context, tag string, local []int, vals []float64) error {
	seq := n.seq.Add(1)
	if seq > retireWindow {
		n.retireBelow(seq - retireWindow)
	}
	ts := hashTag(tag)
	for _, r := range local {
		f := Frame{Type: frameExchange, Seq: seq, Rank: int32(r), Kind: kindF64, TagSum: ts, F64: []float64{vals[r]}}
		if err := n.broadcast(ctx, &f, headerSize+exchangeHeaderSize+8); err != nil {
			return err
		}
	}
	return n.collect(ctx, seq, ts, tag, len(vals), func(r int, f Frame) error {
		if f.Kind != kindF64 || len(f.F64) != 1 {
			return fmt.Errorf("wire: exchange %q: rank %d payload is not a scalar", tag, r)
		}
		vals[r] = f.F64[0]
		return nil
	})
}
