package wire

import (
	"testing"

	"dgcl/internal/runtime"
	"dgcl/internal/tensor"
)

// FuzzDecodeFrame drives the full frame decode path (header validation, body
// cap, frame checksum, body decode) with arbitrary bytes. The invariants
// mirror the checkpoint codec's: malformed input — truncated, oversized,
// bit-flipped, or garbage — must return an error, never panic, and must never
// allocate a payload larger than the capped, validated dimensions declare.
func FuzzDecodeFrame(f *testing.F) {
	m := tensor.New(2, 3)
	for i := range m.Data {
		m.Data[i] = float32(i) - 1.5
	}
	seeds := [][]byte{
		encodeFrame(nil, &Frame{Type: frameData, Seq: 1,
			Key: runtime.TransferKey{Stage: 1, Index: 2}, Src: 0, Dst: 1, MsgSum: 99, Rows: m}),
		encodeFrame(nil, &Frame{Type: frameExchange, Seq: 2, Rank: 1, Kind: kindF32,
			TagSum: hashTag("grad.0.0"), Rows: m}),
		encodeFrame(nil, &Frame{Type: frameExchange, Seq: 3, Rank: 0, Kind: kindF64,
			TagSum: hashTag("loss"), F64: []float64{0.25, -1}}),
		encodeFrame(nil, &Frame{Type: frameCredit, Credits: 1}),
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)/2]) // truncated
		flip := append([]byte(nil), s...)
		flip[len(flip)/3] ^= 0x10
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if fr != nil || n != 0 {
				t.Fatalf("error return leaked a partial frame: %v, %d", fr, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// A frame that decoded must re-encode to the same bytes it came
		// from (the codec is canonical), so decode(encode(x)) == x holds
		// for everything the reader accepts.
		re := encodeFrame(nil, fr)
		if len(re) != n {
			t.Fatalf("re-encode is %d bytes, decode consumed %d", len(re), n)
		}
		for i := range re {
			if re[i] != data[i] && i != 6 && i != 7 { // reserved bytes are not canonical
				t.Fatalf("re-encode differs at byte %d: %#x vs %#x", i, re[i], data[i])
			}
		}
		if fr.Rows != nil && len(fr.Rows.Data) > DefaultMaxBody/4 {
			t.Fatalf("payload of %d floats exceeds the body cap", len(fr.Rows.Data))
		}
	})
}
