package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dgcl/internal/core"
	"dgcl/internal/runtime"
)

// Fabric is a loopback wire cluster living in one process: K nodes, node i
// hosting device i, fully meshed over 127.0.0.1 TCP. Every client goroutine
// runs in-process but every cross-device payload crosses a real socket, so
// the chaos battery and the benchmarks exercise the same framing, credits,
// and failure mapping a multi-machine run does. A fabric built for K devices
// also serves a degraded K'<K cluster: transports route by external device
// id, so survivors keep addressing the same endpoints after Degrade.
//
// It implements runtime.TransportProvider; install it via Cluster.Provider
// or dgcl.RunOptions.Transport.
type Fabric struct {
	cfg   Config
	nodes []*Node
	owner map[int32]int
	pool  *runtime.MatrixPool
	seq   atomic.Uint64
}

// NewLoopbackFabric opens K loopback endpoints and forms the mesh.
func NewLoopbackFabric(k int, cfg Config) (*Fabric, error) {
	cfg = cfg.withDefaults()
	f := &Fabric{cfg: cfg, pool: &runtime.MatrixPool{}, owner: make(map[int32]int)}
	specs := make([]NodeSpec, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wire: fabric listen: %w", err)
		}
		n := NewNode(cfg, i, ln)
		n.pool = f.pool // shared: any node's reader may decode a buffer any other send reuses
		f.nodes = append(f.nodes, n)
		specs[i] = NodeSpec{Addr: ln.Addr().String(), Ranks: []int{i}}
		f.owner[int32(i)] = i
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.HandshakeTimeout)
	defer cancel()
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, n := range f.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			errs[i] = n.Connect(ctx, specs)
		}(i, n)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// CollectiveTransport implements runtime.TransportProvider over the whole
// mesh.
func (f *Fabric) CollectiveTransport(stages [][]core.Transfer, ids []int) runtime.Transport {
	seq := f.seq.Add(1)
	nodes := make(map[int]*Node, len(f.nodes))
	for i, n := range f.nodes {
		nodes[i] = n
		if seq > retireWindow {
			n.retireBelow(seq - retireWindow)
		}
	}
	return &meshTransport{seq: seq, nodes: nodes, owner: f.owner, ids: ids, pool: f.pool}
}

// Kill hard-closes device dev's node: its sockets drop mid-stream, peers see
// connection failures, and every transfer touching it maps to a
// DeviceDownError — the fail-stop failure model over real connections.
func (f *Fabric) Kill(dev int) {
	if dev >= 0 && dev < len(f.nodes) {
		f.nodes[dev].Close()
	}
}

// Close tears the whole fabric down, waiting for every reader goroutine to
// exit so goroutine-leak checks in tests see a clean shutdown. Safe to call
// more than once.
func (f *Fabric) Close() {
	for _, n := range f.nodes {
		if n != nil {
			n.Close()
		}
	}
}
