package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/runtime"
	"dgcl/internal/tensor"
	"dgcl/internal/testutil"
	"dgcl/internal/topology"
)

// Socket acceptance battery (ISSUE 6): every collective result over loopback
// TCP must be bit-identical to the in-memory channel transport, the chaos
// battery must behave identically whether bytes cross a channel or a socket,
// and a mid-collective connection kill must map to the same DeviceDownError
// the fail-stop crash model produces.

// buildCluster mirrors the runtime test fixture through exported APIs:
// graph -> partition -> relation -> local graphs -> SPST plan -> cluster.
func buildCluster(t testing.TB, k int, seed int64) (*runtime.Cluster, *comm.Relation) {
	t.Helper()
	g := graph.CommunityGraph(300, 10, 4, 0.8, seed)
	p, err := partition.KWay(g, k, partition.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := core.PlanSPST(rel, topology.SubDGX1(k), 64, core.SPSTOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	c, err := runtime.NewCluster(rel, comm.BuildLocalGraphs(g, rel), plan)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 30 * time.Second
	return c, rel
}

// newFabric opens a loopback fabric whose handshake is bound to the
// cluster's compiled plan, and tears it down with the test.
func newFabric(t testing.TB, c *runtime.Cluster) *Fabric {
	t.Helper()
	f, err := NewLoopbackFabric(c.K, Config{ClusterID: "test", PlanSum: PlanDigest(c.Plan)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func randomLocals(rel *comm.Relation, k, cols int) []*tensor.Matrix {
	local := make([]*tensor.Matrix, k)
	for d := 0; d < k; d++ {
		local[d] = tensor.New(len(rel.Local[d]), cols).FillRandom(int64(d) + 1)
	}
	return local
}

func TestFabricAllgatherBitIdenticalToChan(t *testing.T) {
	before := testutil.Goroutines()
	c, rel := buildCluster(t, 4, 1)
	local := randomLocals(rel, 4, 3)
	gradFull := make([]*tensor.Matrix, 4)
	for d := 0; d < 4; d++ {
		lg := c.Locals[d]
		gradFull[d] = tensor.New(lg.NumLocal+lg.NumRemote, 3).FillRandom(int64(100 + d))
	}

	wantFull, err := c.Allgather(local)
	if err != nil {
		t.Fatal(err)
	}
	wantGrads, err := c.BackwardAllgather(gradFull)
	if err != nil {
		t.Fatal(err)
	}

	fab := newFabric(t, c)
	c.Provider = fab
	for round := 0; round < 3; round++ {
		gotFull, err := c.Allgather(local)
		if err != nil {
			t.Fatalf("round %d forward over sockets: %v", round, err)
		}
		gotGrads, err := c.BackwardAllgather(gradFull)
		if err != nil {
			t.Fatalf("round %d backward over sockets: %v", round, err)
		}
		for d := 0; d < c.K; d++ {
			if diff := tensor.MaxAbsDiff(gotFull[d], wantFull[d]); diff != 0 {
				t.Fatalf("round %d GPU %d forward differs over the wire by %v", round, d, diff)
			}
			if diff := tensor.MaxAbsDiff(gotGrads[d], wantGrads[d]); diff != 0 {
				t.Fatalf("round %d GPU %d backward differs over the wire by %v", round, d, diff)
			}
		}
	}

	fab.Close()
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked: %d before, %d after fabric close", before, testutil.Goroutines())
	}
}

func TestFabricEpochBitIdenticalToChan(t *testing.T) {
	const cols, hidden, epochs = 8, 4, 3
	train := func(c *runtime.Cluster) ([]float64, *gnn.Model) {
		model := gnn.NewModel(gnn.GCN, cols, hidden, 2, 7)
		features := tensor.New(300, cols).FillRandom(11)
		targets := tensor.New(300, hidden).FillRandom(12)
		tr, err := runtime.NewTrainer(c, model, features, targets)
		if err != nil {
			t.Fatal(err)
		}
		losses := make([]float64, epochs)
		for e := 0; e < epochs; e++ {
			loss, err := tr.Epoch()
			if err != nil {
				t.Fatalf("epoch %d: %v", e, err)
			}
			tr.Step(0.01)
			losses[e] = loss
		}
		return losses, model
	}

	cA, _ := buildCluster(t, 4, 1)
	lossA, modelA := train(cA)

	cB, _ := buildCluster(t, 4, 1)
	cB.Provider = newFabric(t, cB)
	lossB, modelB := train(cB)

	for e := range lossA {
		if lossA[e] != lossB[e] {
			t.Fatalf("epoch %d loss diverged over the wire: %v vs %v", e, lossA[e], lossB[e])
		}
	}
	for li := range modelA.Layers {
		ap, bp := modelA.Layers[li].Params(), modelB.Layers[li].Params()
		for pi := range ap {
			for j := range ap[pi].Data {
				if ap[pi].Data[j] != bp[pi].Data[j] {
					t.Fatalf("layer %d param %d element %d differs over the wire", li, pi, j)
				}
			}
		}
	}
}

// TestFabricChaosRetriesTransparent is the PR 1 chaos battery run unchanged
// over sockets: injected drop/duplicate/corrupt/delay must stay transparent
// behind retries, with results bit-identical to the fault-free run.
func TestFabricChaosRetriesTransparent(t *testing.T) {
	c, rel := buildCluster(t, 4, 42)
	local := randomLocals(rel, 4, 3)

	wantFull, err := c.Allgather(local)
	if err != nil {
		t.Fatal(err)
	}

	c.Provider = newFabric(t, c)
	fstats := &runtime.FaultStats{}
	c.Faults = &runtime.FaultConfig{
		Seed:     7,
		Default:  runtime.FaultRates{Drop: 0.25, Duplicate: 0.1, Corrupt: 0.1, Delay: 0.05},
		MaxDelay: 200 * time.Microsecond,
		Stats:    fstats,
	}
	retry := runtime.DefaultRetryPolicy()
	retry.MaxRetries = 30
	retry.BaseBackoff = 50 * time.Microsecond
	c.Retry = &retry
	c.Stats = runtime.NewCommStats(c.K)

	for round := 0; round < 3; round++ {
		gotFull, err := c.Allgather(local)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for d := 0; d < c.K; d++ {
			if diff := tensor.MaxAbsDiff(gotFull[d], wantFull[d]); diff != 0 {
				t.Fatalf("round %d GPU %d differs under socket faults by %v", round, d, diff)
			}
		}
	}
	if fstats.Drops.Load() == 0 || fstats.Corrupts.Load() == 0 {
		t.Fatalf("chaos run injected nothing: %d drops, %d corrupts", fstats.Drops.Load(), fstats.Corrupts.Load())
	}
	if c.Stats.TotalRetries() == 0 {
		t.Fatal("faults were injected over the wire but no sends were retried")
	}
}

func TestFabricChaosExhaustedBudgetFailsStructuredAndLeakFree(t *testing.T) {
	c, rel := buildCluster(t, 4, 42)
	local := randomLocals(rel, 4, 3)
	c.Provider = newFabric(t, c)
	c.Faults = &runtime.FaultConfig{Seed: 11, Default: runtime.FaultRates{Drop: 1.0}}
	c.Retry = &runtime.RetryPolicy{
		MaxRetries:  2,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  100 * time.Microsecond,
		RecvTimeout: 150 * time.Millisecond,
	}
	const deadline = 5 * time.Second
	c.Timeout = deadline
	c.Stats = runtime.NewCommStats(c.K)

	before := testutil.Goroutines()
	start := time.Now()
	_, err := c.Allgather(local)
	if err == nil {
		t.Fatal("total packet loss produced a successful allgather over sockets")
	}
	if elapsed := time.Since(start); elapsed >= deadline {
		t.Fatalf("failure took %v, deadline was %v", elapsed, deadline)
	}
	var ce *runtime.CollectiveError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CollectiveError", err)
	}
	var te *runtime.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("no *TransportError in the chain: %v", err)
	}
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked: %d before, %d after settling window", before, testutil.Goroutines())
	}
}

// killerProvider kills one fabric node the first time a transfer touches its
// device, while a collective is in flight on every client.
type killerProvider struct {
	fab  *Fabric
	dev  int
	once sync.Once
}

func (p *killerProvider) CollectiveTransport(stages [][]core.Transfer, ids []int) runtime.Transport {
	return &killerTransport{inner: p.fab.CollectiveTransport(stages, ids), p: p}
}

type killerTransport struct {
	inner runtime.Transport
	p     *killerProvider
}

func (t *killerTransport) Unwrap() runtime.Transport { return t.inner }

func (t *killerTransport) Send(ctx context.Context, key runtime.TransferKey, tr core.Transfer, msg runtime.Message) error {
	if tr.Src == t.p.dev || tr.Dst == t.p.dev {
		t.p.once.Do(func() { t.p.fab.Kill(t.p.dev) })
	}
	return t.inner.Send(ctx, key, tr, msg)
}

func (t *killerTransport) Recv(ctx context.Context, key runtime.TransferKey, tr core.Transfer) (runtime.Message, error) {
	return t.inner.Recv(ctx, key, tr)
}

// TestFabricMidCollectiveKillMapsToDeviceDown hard-closes one node's sockets
// while a collective is mid-flight: every affected client must surface a
// DeviceDownError naming the dead device — the same verdict the in-process
// fail-stop crash model produces — and no goroutine may be left blocked.
func TestFabricMidCollectiveKillMapsToDeviceDown(t *testing.T) {
	const dead = 1
	before := testutil.Goroutines()
	c, rel := buildCluster(t, 4, 42)
	local := randomLocals(rel, 4, 3)
	fab := newFabric(t, c)
	c.Provider = &killerProvider{fab: fab, dev: dead}
	c.Health = runtime.NewHealthTracker(1, nil, nil)
	c.Timeout = 10 * time.Second

	_, err := c.Allgather(local)
	if err == nil {
		t.Fatal("collective succeeded across a killed connection")
	}
	if !errors.Is(err, runtime.ErrDeviceDown) {
		t.Fatalf("error does not unwrap to ErrDeviceDown: %v", err)
	}
	var dde *runtime.DeviceDownError
	if !errors.As(err, &dde) || dde.Device != dead {
		t.Fatalf("no DeviceDownError naming device %d in chain: %v", dead, err)
	}
	var ce *runtime.CollectiveError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CollectiveError", err)
	}
	found := false
	for _, d := range ce.Down {
		if d == dead {
			found = true
		}
	}
	if !found {
		t.Fatalf("CollectiveError.Down = %v, does not name device %d", ce.Down, dead)
	}

	fab.Close()
	if !testutil.GoroutinesSettleTo(before, 2*time.Second) {
		t.Fatalf("goroutines leaked after kill: %d before, %d after", before, testutil.Goroutines())
	}
}

// twoNodes stands up a 2-process-shaped mesh (each node hosting two ranks)
// through the same NewNode/Connect path a real worker uses.
func twoNodes(t *testing.T, cfg0, cfg1 Config) (*Node, *Node, []error) {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := NewNode(cfg0, 0, ln0), NewNode(cfg1, 1, ln1)
	t.Cleanup(func() { n0.Close(); n1.Close() })
	specs := []NodeSpec{
		{Addr: ln0.Addr().String(), Ranks: []int{0, 1}},
		{Addr: ln1.Addr().String(), Ranks: []int{2, 3}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, n := range []*Node{n0, n1} {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			errs[i] = n.Connect(ctx, specs)
		}(i, n)
	}
	wg.Wait()
	return n0, n1, errs
}

func TestNodeExchanges(t *testing.T) {
	cfg := Config{ClusterID: "ex", PlanSum: 5}
	n0, n1, errs := twoNodes(t, cfg, cfg)
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	runErrs := make([]error, 2)
	f0 := []float64{0.5, 1.0 / 3.0, 0, 0}
	f1 := []float64{0, 0, -2.25, 1e-17}
	m0 := []*tensor.Matrix{tensor.New(2, 3).FillRandom(1), tensor.New(2, 3).FillRandom(2), tensor.New(2, 3), tensor.New(2, 3)}
	m1 := []*tensor.Matrix{tensor.New(2, 3), tensor.New(2, 3), tensor.New(2, 3).FillRandom(3), tensor.New(2, 3).FillRandom(4)}
	want := []*tensor.Matrix{m0[0], m0[1], m1[2], m1[3]}
	wantCopy := make([]*tensor.Matrix, len(want))
	for i, m := range want {
		wantCopy[i] = tensor.New(m.Rows, m.Cols)
		copy(wantCopy[i].Data, m.Data)
	}

	run := func(i int, n *Node, local []int, fs []float64, ms []*tensor.Matrix) {
		defer wg.Done()
		if err := n.ExchangeFloat64s(ctx, "loss", local, fs); err != nil {
			runErrs[i] = err
			return
		}
		runErrs[i] = n.ExchangeMatrices(ctx, "grad.0.0", local, ms)
	}
	wg.Add(2)
	go run(0, n0, []int{0, 1}, f0, m0)
	go run(1, n1, []int{2, 3}, f1, m1)
	wg.Wait()
	if err := errors.Join(runErrs...); err != nil {
		t.Fatal(err)
	}

	wantF := []float64{0.5, 1.0 / 3.0, -2.25, 1e-17}
	for i := range wantF {
		if f0[i] != wantF[i] || f1[i] != wantF[i] {
			t.Fatalf("float64 exchange slot %d: node0 %v node1 %v want %v (bits must survive exactly)", i, f0[i], f1[i], wantF[i])
		}
	}
	for r := 0; r < 4; r++ {
		if diff := tensor.MaxAbsDiff(m0[r], wantCopy[r]); diff != 0 {
			t.Fatalf("node0 matrix slot %d differs by %v", r, diff)
		}
		if diff := tensor.MaxAbsDiff(m1[r], wantCopy[r]); diff != 0 {
			t.Fatalf("node1 matrix slot %d differs by %v", r, diff)
		}
	}
}

func TestHandshakeRejectsStrangers(t *testing.T) {
	cases := []struct {
		name       string
		cfg0, cfg1 Config
	}{
		{"cluster id", Config{ClusterID: "a", PlanSum: 1}, Config{ClusterID: "b", PlanSum: 1}},
		{"plan digest", Config{ClusterID: "a", PlanSum: 1}, Config{ClusterID: "a", PlanSum: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, errs := twoNodes(t, tc.cfg0, tc.cfg1)
			if errs[0] == nil && errs[1] == nil {
				t.Fatalf("mismatched %s formed a mesh", tc.name)
			}
		})
	}
}

// TestWireSteadyStateAllocs pins the serialization path's allocation
// behavior: once the pools are warm, the per-collective allocation count must
// not scale with the payload size (buffers come from the size-classed pools,
// not the heap), and must stay under an absolute budget.
func TestWireSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c, rel := buildCluster(t, 4, 1)
	c.Provider = newFabric(t, c)
	small := randomLocals(rel, 4, 4)
	large := randomLocals(rel, 4, 32)
	for i := 0; i < 2; i++ {
		if _, err := c.Allgather(small); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Allgather(large); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(local []*tensor.Matrix) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := c.Allgather(local); err != nil {
				t.Fatal(err)
			}
		})
	}
	smallAllocs, largeAllocs := measure(small), measure(large)
	if largeAllocs > smallAllocs*1.3+32 {
		t.Fatalf("allocations scale with payload size: %v at 4 cols, %v at 32 cols — serialization is not pooled", smallAllocs, largeAllocs)
	}
	if largeAllocs > 2000 {
		t.Fatalf("steady-state wire collective allocates %v times, budget 2000", largeAllocs)
	}
}
