package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Control-plane helpers for the coordinator protocol (cmd/dgcltrain -listen
// and cmd/dgclworker): length-prefixed JSON messages over a net.Conn, with
// armed deadlines and the same cap-before-materialize discipline as data
// frames. Kept in this package so every blocking socket operation lives
// under the ctxbound analyzer's wire coverage.

// maxControlLen caps a control message before allocation.
const maxControlLen = 1 << 20

// WriteControl sends one length-prefixed JSON message under an armed write
// deadline.
func WriteControl(conn net.Conn, v any, timeout time.Duration) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: control encode: %w", err)
	}
	if len(body) > maxControlLen {
		return fmt.Errorf("wire: control message %d bytes exceeds cap %d", len(body), maxControlLen)
	}
	buf := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("wire: control write: %w", err)
	}
	return nil
}

// ReadControl reads one length-prefixed JSON message into v under an armed
// read deadline.
func ReadControl(conn net.Conn, v any, timeout time.Duration) error {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	var hdr [4]byte
	if err := connReadFull(conn, hdr[:]); err != nil {
		return fmt.Errorf("wire: control read: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	if length > maxControlLen {
		return fmt.Errorf("wire: control message %d bytes exceeds cap %d", length, maxControlLen)
	}
	body := make([]byte, length)
	if err := connReadFull(conn, body); err != nil {
		return fmt.Errorf("wire: control read: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: control decode: %w", err)
	}
	return nil
}
