package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a wire endpoint. The zero value selects defaults.
type Config struct {
	// ClusterID must match across every process of one run; the handshake
	// rejects strangers.
	ClusterID string
	// PlanSum is PlanDigest of the communication plan this endpoint compiled.
	// Handshakes reject peers whose plans differ — a divergent plan would
	// deadlock mid-collective, far from the cause.
	PlanSum uint64
	// Window is the per-link in-flight frame window: a sender holds one
	// credit per unrouted frame and blocks (cancellably) when the window is
	// exhausted; the receiver returns a credit as each frame is routed.
	// Chunked overlapped execution shifts the frame-size distribution toward
	// many small frames, where a larger window keeps the pipe full (see
	// dgcltrain/dgclworker -wire-window). Default DefaultWindow.
	Window int
	// IOTimeout bounds every mid-frame socket read and every frame write.
	// Default 10s.
	IOTimeout time.Duration
	// IdleTimeout is the reader's re-arm period while a link sits idle
	// between collectives (idle timeouts are not failures). Default 30s.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange; it is generous because a
	// peer may spend a long time building its system before connecting.
	// Default 60s.
	HandshakeTimeout time.Duration
	// MaxBody caps a frame body before materialization. Default
	// DefaultMaxBody.
	MaxBody int
}

// DefaultWindow is the per-link credit window used when Config does not
// choose one.
const DefaultWindow = 64

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 60 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	return c
}

// bytePool recycles frame serialization and body scratch buffers, binned by
// power-of-two capacity like the runtime matrix pool (and like it,
// deliberately not a sync.Pool, for deterministic allocation counts).
type bytePool struct {
	mu   sync.Mutex
	free map[int][][]byte
}

func (p *bytePool) get(n int) []byte {
	if n == 0 {
		return nil
	}
	cl := bits.Len(uint(n - 1))
	p.mu.Lock()
	if bs := p.free[cl]; len(bs) > 0 {
		b := bs[len(bs)-1]
		p.free[cl] = bs[:len(bs)-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, 1<<cl)
}

func (p *bytePool) put(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	cl := bits.Len(uint(c)) - 1
	p.mu.Lock()
	if p.free == nil {
		p.free = make(map[int][][]byte)
	}
	p.free[cl] = append(p.free[cl], b[:0])
	p.mu.Unlock()
}

// link is one pooled connection to a peer node, reused across every
// collective of the run. It owns the socket, the outbound credit window, and
// the reader goroutine that demuxes inbound frames into the node's tables.
type link struct {
	node    *Node
	peer    int // peer node id
	conn    net.Conn
	cfg     *Config
	credits chan struct{}

	wmu sync.Mutex // serializes frame writes

	closed    chan struct{}
	closeOnce sync.Once
	err       atomic.Value // error; first failure, for diagnostics
}

func newLink(n *Node, peer int, conn net.Conn) *link {
	l := &link{node: n, peer: peer, conn: conn, cfg: &n.cfg, closed: make(chan struct{})}
	l.credits = make(chan struct{}, l.cfg.Window)
	for i := 0; i < l.cfg.Window; i++ {
		l.credits <- struct{}{} //dgclvet:ignore ctxbound filling a fresh channel to its exact capacity; cannot block
	}
	return l
}

// fail shears the link down: first caller records the cause, everyone
// blocked on it unblocks, the socket closes (which also unblocks the reader).
func (l *link) fail(err error) {
	l.closeOnce.Do(func() {
		if err != nil {
			l.err.Store(err)
		}
		close(l.closed)
		l.conn.Close()
	})
}

func (l *link) isClosed() bool {
	select {
	case <-l.closed:
		return true
	default:
		return false
	}
}

// readFull fills p from the socket under armed read deadlines. With idleOK,
// timeouts while no byte of the next frame has arrived simply re-arm (links
// idle between collectives); once a frame has started, a stall longer than
// IOTimeout is a peer failure.
func (l *link) readFull(p []byte, idleOK bool) error {
	got := 0
	for got < len(p) {
		d := l.cfg.IOTimeout
		if idleOK && got == 0 {
			d = l.cfg.IdleTimeout
		}
		if err := l.conn.SetReadDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		n, err := l.conn.Read(p[got:])
		got += n
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && idleOK && got == 0 && !l.isClosed() {
				continue
			}
			return err
		}
	}
	return nil
}

// writeFrame writes one encoded frame under the write mutex with an armed
// write deadline (tightened by ctx's deadline when it is sooner).
func (l *link) writeFrame(ctx context.Context, buf []byte) error {
	if l.isClosed() {
		return l.downErr()
	}
	deadline := time.Now().Add(l.cfg.IOTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := l.conn.SetWriteDeadline(deadline); err != nil {
		l.fail(err)
		return l.downErr()
	}
	//dgclvet:ignore lockdisc wmu exists to serialize whole-frame writes on the shared conn; the write deadline armed above bounds the hold, and no other lock nests inside wmu
	if _, err := l.conn.Write(buf); err != nil {
		l.fail(err)
		return l.downErr()
	}
	return nil
}

// sendFrame acquires one window credit (cancellably) and writes the frame.
func (l *link) sendFrame(ctx context.Context, buf []byte) error {
	select {
	case <-l.credits:
	case <-ctx.Done():
		return ctx.Err()
	case <-l.closed:
		return l.downErr()
	}
	return l.writeFrame(ctx, buf)
}

// returnCredit hands one window credit back to the peer after routing one of
// its frames. Credit frames themselves bypass the window (they are what
// refills it).
func (l *link) returnCredit() {
	buf := l.node.bytes.get(headerSize + 4)[:0]
	buf = encodeFrame(buf, &Frame{Type: frameCredit, Credits: 1})
	err := l.writeFrame(context.Background(), buf)
	l.node.bytes.put(buf)
	_ = err // a failed credit write already sheared the link down
}

// release refills local send credits granted back by the peer. Overflow is
// dropped (can only happen on a misbehaving peer; the window just shrinks).
func (l *link) release(n uint32) {
	for ; n > 0; n-- {
		select {
		case l.credits <- struct{}{}:
		default:
			return
		}
	}
}

// downErr is the failure for operations on a dead link; the transport maps
// it to a DeviceDownError naming the transfer's remote endpoint.
func (l *link) downErr() error {
	if v := l.err.Load(); v != nil {
		if err, ok := v.(error); ok {
			return fmt.Errorf("%w: %v", errLinkDown, err)
		}
	}
	return errLinkDown
}

// readLoop demuxes inbound frames until the link dies. Any framing error is
// fatal to the link — TCP does not corrupt, so a frame checksum mismatch
// means a codec bug or a desynced stream, and shearing the link down maps it
// to the same fail-stop path as a peer crash.
func (l *link) readLoop() {
	hdr := make([]byte, headerSize)
	for {
		if err := l.readFull(hdr, true); err != nil {
			l.fail(err)
			return
		}
		h, err := parseHeader(hdr, l.cfg.MaxBody)
		if err != nil {
			l.fail(err)
			return
		}
		body := l.node.bytes.get(h.length)
		if err := l.readFull(body, false); err != nil {
			l.node.bytes.put(body)
			l.fail(err)
			return
		}
		if got := fnv64a(body); got != h.sum {
			l.node.bytes.put(body)
			l.fail(fmt.Errorf("wire: frame checksum mismatch from node %d", l.peer))
			return
		}
		f, err := decodeBody(h.typ, body, l.node.pool)
		l.node.bytes.put(body)
		if err != nil {
			l.fail(err)
			return
		}
		switch f.Type {
		case frameCredit:
			l.release(f.Credits)
		default:
			l.node.route(f)
			l.returnCredit()
		}
	}
}

// hello is the handshake each side sends when a connection is established.
type hello struct {
	nodeID    int32
	clusterID string
	planSum   uint64
	ranks     []int32
}

const (
	maxClusterIDLen = 256
	maxHelloRanks   = 1 << 16
)

var helloMagic = [4]byte{'D', 'G', 'W', 'H'}

func encodeHello(h hello) []byte {
	buf := append([]byte(nil), helloMagic[:]...)
	buf = append(buf, wireVersion)
	buf = appendI32(buf, h.nodeID)
	buf = appendU32(buf, uint32(len(h.clusterID)))
	buf = append(buf, h.clusterID...)
	buf = appendU64(buf, h.planSum)
	buf = appendU32(buf, uint32(len(h.ranks)))
	for _, r := range h.ranks {
		buf = appendI32(buf, r)
	}
	return buf
}

// readHello reads and validates a handshake from conn under an armed
// deadline, with the same cap-before-materialize discipline as frames.
func readHello(conn net.Conn, timeout time.Duration) (hello, error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return hello{}, err
	}
	fixed := make([]byte, 13)
	if err := connReadFull(conn, fixed); err != nil {
		return hello{}, fmt.Errorf("wire: handshake read: %w", err)
	}
	if [4]byte(fixed[:4]) != helloMagic {
		return hello{}, fmt.Errorf("wire: bad handshake magic %q", fixed[:4])
	}
	if fixed[4] != wireVersion {
		return hello{}, fmt.Errorf("wire: handshake version %d, want %d", fixed[4], wireVersion)
	}
	var h hello
	h.nodeID = int32(binary.LittleEndian.Uint32(fixed[5:]))
	idLen := binary.LittleEndian.Uint32(fixed[9:])
	if idLen > maxClusterIDLen {
		return hello{}, fmt.Errorf("wire: handshake cluster id %d bytes exceeds cap %d", idLen, maxClusterIDLen)
	}
	rest := make([]byte, int(idLen)+12)
	if err := connReadFull(conn, rest); err != nil {
		return hello{}, fmt.Errorf("wire: handshake read: %w", err)
	}
	h.clusterID = string(rest[:idLen])
	h.planSum = binary.LittleEndian.Uint64(rest[idLen:])
	nRanks := binary.LittleEndian.Uint32(rest[idLen+8:])
	if nRanks > maxHelloRanks {
		return hello{}, fmt.Errorf("wire: handshake rank list %d entries exceeds cap %d", nRanks, maxHelloRanks)
	}
	ranks := make([]byte, 4*int(nRanks))
	if err := connReadFull(conn, ranks); err != nil {
		return hello{}, fmt.Errorf("wire: handshake read: %w", err)
	}
	h.ranks = make([]int32, nRanks)
	for i := range h.ranks {
		h.ranks[i] = int32(binary.LittleEndian.Uint32(ranks[4*i:]))
	}
	return h, nil
}

// connReadFull fills p from conn; the caller has already armed a read
// deadline on conn.
func connReadFull(conn net.Conn, p []byte) error {
	for got := 0; got < len(p); {
		n, err := conn.Read(p[got:]) //dgclvet:ignore ctxbound every caller arms the read deadline; the helper cannot know the timeout
		got += n
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHello sends this node's handshake under an armed write deadline.
func writeHello(conn net.Conn, h hello, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if _, err := conn.Write(encodeHello(h)); err != nil {
		return fmt.Errorf("wire: handshake write: %w", err)
	}
	return nil
}
