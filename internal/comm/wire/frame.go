// Package wire is the net.Conn transport: it moves collective payloads
// between OS processes as length-prefixed, checksummed binary frames over
// pooled TCP connections, behind the same Transport seam the in-memory
// channel transport implements. One training run spans N processes, each a
// wire Node hosting a subset of the cluster's clients; the loopback Fabric
// runs all N endpoints in one process (every cross-client payload still
// crosses a real socket) for tests and benchmarks.
//
// The codec follows the checkpoint snapshot codec's bounded-decode
// discipline: every length is validated against a cap before any memory is
// materialized, malformed input returns a wrapped error, and nothing ever
// panics. See DESIGN.md §12 for the frame layout, handshake, and
// backpressure protocol.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"dgcl/internal/core"
	"dgcl/internal/runtime"
	"dgcl/internal/tensor"
)

// Frame layout (all integers little-endian):
//
//	header (20 bytes): magic "DGW1" | version u8 | type u8 | 2 reserved |
//	                   body length u32 | body FNV-64a checksum u64
//	data body (40+):   seq u64 | stage i32 | index i32 | src i32 | dst i32 |
//	                   message checksum u64 | rows i32 | cols i32 |
//	                   rows*cols float32 payload
//	exchange body (32+): seq u64 | rank i32 | kind u8 | 3 reserved |
//	                   tag hash u64 | rows i32 | cols i32 | payload
//	                   (kind 0: float32 matrix, kind 1: float64 vector)
//	credit body (4):   count u32
//
// The frame checksum covers the whole body and guards the framing layer
// itself (a codec or socket bug shears the link down rather than delivering
// garbage). The message checksum is the runtime.Message seal carried verbatim
// end to end: faults injected above the wire corrupt the payload after
// sealing, so the frame checksum still passes and the corruption is detected
// by the receiving fault layer exactly as on the channel transport.
const (
	headerSize  = 20
	wireVersion = 1

	frameData     = 1
	frameCredit   = 2
	frameExchange = 3

	dataHeaderSize     = 40
	exchangeHeaderSize = 32

	// DefaultMaxBody caps a frame body before any allocation; oversized
	// length prefixes are rejected without materializing anything.
	DefaultMaxBody = 1 << 26

	// maxDim bounds the row/col counts of a payload matrix individually, so
	// their product cannot overflow before the exact-size check.
	maxDim = 1 << 26

	kindF32 = 0
	kindF64 = 1
)

var wireMagic = [4]byte{'D', 'G', 'W', '1'}

// Frame is one decoded wire frame.
type Frame struct {
	Type byte
	Seq  uint64
	// Data frames.
	Key      runtime.TransferKey
	Src, Dst int32
	MsgSum   uint64
	// Exchange frames.
	Rank   int32
	Kind   byte
	TagSum uint64
	F64    []float64
	// Payload of data frames and kindF32 exchanges.
	Rows *tensor.Matrix
	// Credit frames.
	Credits uint32
}

// fnv64a is the frame checksum: FNV-64a chaining over 64-bit little-endian
// lanes (byte-at-a-time only for the tail), inlined so the hot path hashes
// without allocating a hash.Hash64. The checksum never leaves a single
// build — it is computed on encode and verified on decode by peers running
// the same library — so the lane-wide variant is free to diverge from
// canonical byte-wise FNV; what matters is that any flipped body byte
// changes the chained state, which the wire corruption tests exercise.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= 1099511628211
		b = b[8:]
	}
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// hashTag names an exchange stream; both sides derive it from the same tag
// string.
func hashTag(tag string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return h
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int32) []byte  { return appendU32(b, uint32(v)) }

// encodeFrame appends the complete encoding of f to buf and returns the
// extended slice. The body checksum is computed over the encoded body.
func encodeFrame(buf []byte, f *Frame) []byte {
	start := len(buf)
	buf = append(buf, wireMagic[:]...)
	buf = append(buf, wireVersion, f.Type, 0, 0)
	buf = appendU32(buf, 0) // body length, patched below
	buf = appendU64(buf, 0) // body checksum, patched below
	bodyStart := len(buf)
	switch f.Type {
	case frameData:
		buf = appendU64(buf, f.Seq)
		buf = appendI32(buf, int32(f.Key.Stage))
		buf = appendI32(buf, int32(f.Key.Index))
		buf = appendI32(buf, f.Src)
		buf = appendI32(buf, f.Dst)
		buf = appendU64(buf, f.MsgSum)
		buf = appendI32(buf, int32(f.Rows.Rows))
		buf = appendI32(buf, int32(f.Rows.Cols))
		for _, x := range f.Rows.Data {
			buf = appendU32(buf, math.Float32bits(x))
		}
	case frameExchange:
		buf = appendU64(buf, f.Seq)
		buf = appendI32(buf, f.Rank)
		buf = append(buf, f.Kind, 0, 0, 0)
		buf = appendU64(buf, f.TagSum)
		if f.Kind == kindF64 {
			buf = appendI32(buf, int32(len(f.F64)))
			buf = appendI32(buf, 1)
			for _, x := range f.F64 {
				buf = appendU64(buf, math.Float64bits(x))
			}
		} else {
			buf = appendI32(buf, int32(f.Rows.Rows))
			buf = appendI32(buf, int32(f.Rows.Cols))
			for _, x := range f.Rows.Data {
				buf = appendU32(buf, math.Float32bits(x))
			}
		}
	case frameCredit:
		buf = appendU32(buf, f.Credits)
	default:
		panic(fmt.Sprintf("wire: encodeFrame: unknown frame type %d", f.Type))
	}
	body := buf[bodyStart:]
	binary.LittleEndian.PutUint32(buf[start+8:], uint32(len(body)))
	binary.LittleEndian.PutUint64(buf[start+12:], fnv64a(body))
	return buf
}

// header is a parsed, validated frame header.
type header struct {
	typ    byte
	length int
	sum    uint64
}

// parseHeader validates a raw 20-byte header against maxBody. No body memory
// has been touched yet when it rejects.
func parseHeader(b []byte, maxBody int) (header, error) {
	if len(b) < headerSize {
		return header{}, fmt.Errorf("wire: short frame header: %d bytes", len(b))
	}
	if [4]byte(b[:4]) != wireMagic {
		return header{}, fmt.Errorf("wire: bad frame magic %q", b[:4])
	}
	if b[4] != wireVersion {
		return header{}, fmt.Errorf("wire: unsupported frame version %d", b[4])
	}
	typ := b[5]
	if typ != frameData && typ != frameCredit && typ != frameExchange {
		return header{}, fmt.Errorf("wire: unknown frame type %d", typ)
	}
	length := binary.LittleEndian.Uint32(b[8:])
	if int64(length) > int64(maxBody) {
		return header{}, fmt.Errorf("wire: frame body %d bytes exceeds cap %d", length, maxBody)
	}
	return header{typ: typ, length: int(length), sum: binary.LittleEndian.Uint64(b[12:])}, nil
}

// payloadDims validates a rows×cols declaration against the exact remaining
// body bytes and returns the element count.
func payloadDims(rows, cols int32, remaining, elemSize int) (int, error) {
	if rows < 0 || cols < 0 || rows > maxDim || cols > maxDim {
		return 0, fmt.Errorf("wire: payload dims %dx%d out of range", rows, cols)
	}
	n := int64(rows) * int64(cols)
	if n*int64(elemSize) != int64(remaining) {
		return 0, fmt.Errorf("wire: payload %dx%d needs %d bytes, frame carries %d", rows, cols, n*int64(elemSize), remaining)
	}
	return int(n), nil
}

// decodeBody parses a checksum-verified body. Matrix payloads come from pool
// when one is supplied (the link reader's steady-state path), freshly
// allocated otherwise.
func decodeBody(typ byte, body []byte, pool *runtime.MatrixPool) (Frame, error) {
	f := Frame{Type: typ}
	switch typ {
	case frameData:
		if len(body) < dataHeaderSize {
			return f, fmt.Errorf("wire: data body %d bytes, need %d", len(body), dataHeaderSize)
		}
		f.Seq = binary.LittleEndian.Uint64(body)
		f.Key.Stage = int(int32(binary.LittleEndian.Uint32(body[8:])))
		f.Key.Index = int(int32(binary.LittleEndian.Uint32(body[12:])))
		f.Src = int32(binary.LittleEndian.Uint32(body[16:]))
		f.Dst = int32(binary.LittleEndian.Uint32(body[20:]))
		f.MsgSum = binary.LittleEndian.Uint64(body[24:])
		rows := int32(binary.LittleEndian.Uint32(body[32:]))
		cols := int32(binary.LittleEndian.Uint32(body[36:]))
		n, err := payloadDims(rows, cols, len(body)-dataHeaderSize, 4)
		if err != nil {
			return f, err
		}
		f.Rows = decodeF32(body[dataHeaderSize:], int(rows), int(cols), n, pool)
	case frameExchange:
		if len(body) < exchangeHeaderSize {
			return f, fmt.Errorf("wire: exchange body %d bytes, need %d", len(body), exchangeHeaderSize)
		}
		f.Seq = binary.LittleEndian.Uint64(body)
		f.Rank = int32(binary.LittleEndian.Uint32(body[8:]))
		f.Kind = body[12]
		if f.Kind != kindF32 && f.Kind != kindF64 {
			return f, fmt.Errorf("wire: unknown exchange payload kind %d", f.Kind)
		}
		f.TagSum = binary.LittleEndian.Uint64(body[16:])
		rows := int32(binary.LittleEndian.Uint32(body[24:]))
		cols := int32(binary.LittleEndian.Uint32(body[28:]))
		if f.Kind == kindF64 {
			if cols != 1 {
				// The f64 encoding is a column vector; accepting other
				// shapes would make the codec non-canonical.
				return f, fmt.Errorf("wire: f64 exchange payload is %dx%d, want column vector", rows, cols)
			}
			n, err := payloadDims(rows, cols, len(body)-exchangeHeaderSize, 8)
			if err != nil {
				return f, err
			}
			f.F64 = make([]float64, n)
			for i := range f.F64 {
				f.F64[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[exchangeHeaderSize+8*i:]))
			}
		} else {
			n, err := payloadDims(rows, cols, len(body)-exchangeHeaderSize, 4)
			if err != nil {
				return f, err
			}
			f.Rows = decodeF32(body[exchangeHeaderSize:], int(rows), int(cols), n, pool)
		}
	case frameCredit:
		if len(body) != 4 {
			return f, fmt.Errorf("wire: credit body %d bytes, need 4", len(body))
		}
		f.Credits = binary.LittleEndian.Uint32(body)
	default:
		return f, fmt.Errorf("wire: unknown frame type %d", typ)
	}
	return f, nil
}

func decodeF32(payload []byte, rows, cols, n int, pool *runtime.MatrixPool) *tensor.Matrix {
	var m *tensor.Matrix
	if pool != nil {
		m = pool.Get(rows, cols)
	} else {
		m = tensor.New(rows, cols)
	}
	for i := 0; i < n; i++ {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return m
}

// DecodeFrame parses one complete frame from the front of data, returning
// the frame and the bytes consumed. It is the composition the link reader
// performs incrementally (header validation, body cap, frame checksum, body
// decode) exposed as a pure function for tests and the fuzz target:
// truncated, oversized, or bit-flipped inputs error without panicking, and
// nothing larger than the declared (capped) body length is ever allocated.
func DecodeFrame(data []byte) (*Frame, int, error) {
	h, err := parseHeader(data, DefaultMaxBody)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < headerSize+h.length {
		return nil, 0, fmt.Errorf("wire: truncated frame: header declares %d body bytes, %d available", h.length, len(data)-headerSize)
	}
	body := data[headerSize : headerSize+h.length]
	if got := fnv64a(body); got != h.sum {
		return nil, 0, fmt.Errorf("wire: frame checksum mismatch: header %#x, body %#x", h.sum, got)
	}
	f, err := decodeBody(h.typ, body, nil)
	if err != nil {
		return nil, 0, err
	}
	return &f, headerSize + h.length, nil
}

// PlanDigest fingerprints a communication plan for the connection handshake:
// two processes may only train together when they compiled identical plans.
func PlanDigest(p *core.Plan) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(p.K))
	mix(uint64(p.BytesPerVertex))
	mix(uint64(len(p.Stages)))
	for _, st := range p.Stages {
		mix(uint64(len(st)))
		for _, tr := range st {
			mix(uint64(tr.Src))
			mix(uint64(tr.Dst))
			mix(uint64(len(tr.Vertices)))
			for _, v := range tr.Vertices {
				mix(uint64(uint32(v)))
			}
		}
	}
	return h
}

// DigestWithChunking folds the transfer-chunking granularity into a plan
// digest. Chunking (runtime overlap, DESIGN.md §16) splits plan transfers
// into sub-transfers at compile time, which changes the wire-visible
// transfer keys — two peers compiled at different granularities would route
// each other's frames to the wrong collective slots. Folding the
// granularity into the hello's plan sum turns that desync into a handshake
// rejection.
func DigestWithChunking(planSum uint64, chunkRows int) uint64 {
	h := planSum
	v := uint64(uint32(chunkRows))
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
