package wire

import (
	"fmt"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/runtime"
	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// Wire hot-path benchmarks: the same workloads as the runtime package's
// BenchmarkAllgather/BenchmarkEpoch, but with every embedding crossing a
// loopback TCP socket through the framed, credit-windowed wire transport.
// The bench-smoke tier records them in BENCH_runtime.json next to the
// channel-transport rows, so `dgclbenchdiff` prices the wire tax — and the
// pooled serialization path keeps allocs/op flat across payload sizes.

type benchCase struct {
	k, verts, cols int
}

func (bc benchCase) name() string { return fmt.Sprintf("k%d/v%d/c%d", bc.k, bc.verts, bc.cols) }

func benchCases() []benchCase {
	return []benchCase{
		{k: 4, verts: 1200, cols: 32},
		{k: 8, verts: 3000, cols: 64},
	}
}

// buildBenchFabric stands up the runtime bench cluster with a loopback
// fabric installed as its transport provider.
func buildBenchFabric(b *testing.B, bc benchCase) (*runtime.Cluster, *comm.Relation) {
	b.Helper()
	g := graph.CommunityGraph(bc.verts, 8, 4, 0.8, 1)
	p, err := partition.KWay(g, bc.k, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		b.Fatal(err)
	}
	plan, _, err := core.PlanSPST(rel, topology.SubDGX1(bc.k), int64(4*bc.cols), core.SPSTOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := runtime.NewCluster(rel, comm.BuildLocalGraphs(g, rel), plan)
	if err != nil {
		b.Fatal(err)
	}
	fab, err := NewLoopbackFabric(bc.k, Config{ClusterID: "bench", PlanSum: PlanDigest(plan)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fab.Close)
	c.Provider = fab
	return c, rel
}

// BenchmarkWireAllgather times one forward graphAllgather per iteration
// over loopback TCP.
func BenchmarkWireAllgather(b *testing.B) {
	for _, bc := range benchCases() {
		b.Run(bc.name(), func(b *testing.B) {
			c, rel := buildBenchFabric(b, bc)
			local := make([]*tensor.Matrix, bc.k)
			for d := 0; d < bc.k; d++ {
				local[d] = tensor.New(len(rel.Local[d]), bc.cols).FillRandom(int64(d) + 1)
			}
			if _, err := c.Allgather(local); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Allgather(local); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireEpoch times one full distributed training epoch per
// iteration with all inter-device traffic on sockets.
func BenchmarkWireEpoch(b *testing.B) {
	benchWireEpoch(b, runtime.OverlapConfig{})
}

// BenchmarkWireEpochOverlap is BenchmarkWireEpoch with the chunked
// pipelined executor on: chunking keeps frames inside the credit window
// while aggregation overlaps the in-flight sends of later stages.
func BenchmarkWireEpochOverlap(b *testing.B) {
	benchWireEpoch(b, runtime.OverlapConfig{Enabled: true, ChunkRows: 256, Window: 4})
}

func benchWireEpoch(b *testing.B, ov runtime.OverlapConfig) {
	for _, bc := range benchCases() {
		b.Run(bc.name(), func(b *testing.B) {
			c, _ := buildBenchFabric(b, bc)
			c.Overlap = ov
			hidden := bc.cols / 2
			model := gnn.NewModel(gnn.GCN, bc.cols, hidden, 2, 7)
			features := tensor.New(bc.verts, bc.cols).FillRandom(11)
			targets := tensor.New(bc.verts, hidden).FillRandom(12)
			tr, err := runtime.NewTrainer(c, model, features, targets)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tr.Epoch(); err != nil {
				b.Fatal(err)
			}
			tr.Step(0.01)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Epoch(); err != nil {
					b.Fatal(err)
				}
				tr.Step(0.01)
			}
		})
	}
}
