// Package comm derives the communication relation of distributed GNN
// training from a graph partitioning: which vertex embeddings every GPU must
// send to every other GPU for one layer (the (di, dj, Vij) tuples of §4.1),
// the per-GPU local/remote vertex sets, and the re-indexed local graphs that
// let an unmodified single-GPU GNN system run on each partition.
package comm

import (
	"fmt"
	"sort"

	"dgcl/internal/graph"
	"dgcl/internal/partition"
)

// Relation captures who needs which embeddings. For a GPU d, Local[d] lists
// its owned vertices V_l_d, Remote[d] the vertices of other partitions whose
// embeddings d needs (direct in-neighbors of local vertices), and
// Send[i][j] = Vij, the vertices GPU i must send to GPU j. All lists are
// sorted by global vertex id.
type Relation struct {
	K      int
	Owner  []int32     // global vertex -> owning GPU
	Local  [][]int32   // gpu -> owned vertices
	Remote [][]int32   // gpu -> remote vertices required
	Send   [][][]int32 // [src][dst] -> vertices src sends dst (nil on diagonal)
}

// Build computes the communication relation for graph g under partition p.
// An edge (u,v) means v's embedding is an input to u, so if owner(u) != owner(v)
// then owner(v) must send v to owner(u).
func Build(g *graph.Graph, p *partition.Partition) (*Relation, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	k := p.K
	r := &Relation{
		K:      k,
		Owner:  p.Assign,
		Local:  make([][]int32, k),
		Remote: make([][]int32, k),
		Send:   make([][][]int32, k),
	}
	for i := range r.Send {
		r.Send[i] = make([][]int32, k)
	}
	for v, owner := range p.Assign {
		r.Local[owner] = append(r.Local[owner], int32(v))
	}
	// Collect remote requirements with a dedup set per GPU.
	needed := make([]map[int32]bool, k)
	for d := range needed {
		needed[d] = make(map[int32]bool)
	}
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		du := p.Assign[u]
		for _, v := range g.Neighbors(int32(u)) {
			if dv := p.Assign[v]; dv != du {
				needed[du][v] = true
			}
		}
	}
	for d := 0; d < k; d++ {
		rem := make([]int32, 0, len(needed[d]))
		for v := range needed[d] {
			rem = append(rem, v)
		}
		sort.Slice(rem, func(i, j int) bool { return rem[i] < rem[j] })
		r.Remote[d] = rem
		for _, v := range rem {
			src := p.Assign[v]
			r.Send[src][d] = append(r.Send[src][d], v)
		}
	}
	return r, nil
}

// Task is one multicast obligation: vertex Vertex, owned by GPU Src, must
// reach every GPU in Dsts (sorted, never containing Src).
type Task struct {
	Vertex int32
	Src    int
	Dsts   []int
}

// MulticastTasks expands the relation into one task per vertex that has at
// least one remote consumer, ordered by vertex id.
func (r *Relation) MulticastTasks() []Task {
	dsts := make(map[int32][]int)
	for src := 0; src < r.K; src++ {
		for dst := 0; dst < r.K; dst++ {
			for _, v := range r.Send[src][dst] {
				dsts[v] = append(dsts[v], dst)
			}
		}
	}
	out := make([]Task, 0, len(dsts))
	for v, ds := range dsts {
		sort.Ints(ds)
		out = append(out, Task{Vertex: v, Src: int(r.Owner[v]), Dsts: ds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vertex < out[j].Vertex })
	return out
}

// Class is a group of vertices sharing the same source GPU and destination
// set; planning treats all its vertices identically, so grouping (and then
// chunking) classes makes SPST cost proportional to the number of distinct
// communication patterns rather than the number of vertices.
type Class struct {
	Src      int
	Dsts     []int
	Vertices []int32
}

// Classes groups multicast tasks by (source, destination-set). The result is
// deterministic: classes sorted by source then destination signature, and
// vertex lists sorted ascending.
func (r *Relation) Classes() []Class {
	type key struct {
		src  int
		dsts string
	}
	byKey := make(map[key]*Class)
	for _, t := range r.MulticastTasks() {
		sig := make([]byte, 0, len(t.Dsts)*2)
		for _, d := range t.Dsts {
			sig = append(sig, byte(d), byte(d>>8))
		}
		kk := key{t.Src, string(sig)}
		c := byKey[kk]
		if c == nil {
			c = &Class{Src: t.Src, Dsts: t.Dsts}
			byKey[kk] = c
		}
		c.Vertices = append(c.Vertices, t.Vertex)
	}
	out := make([]Class, 0, len(byKey))
	for _, c := range byKey {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return lessIntSlice(out[i].Dsts, out[j].Dsts)
	})
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// TotalRemoteVertices returns the total number of (gpu, vertex) remote
// requirements, i.e. the unit communication volume of one graphAllgather.
func (r *Relation) TotalRemoteVertices() int64 {
	var t int64
	for _, rem := range r.Remote {
		t += int64(len(rem))
	}
	return t
}

// PairVolume returns an K×K matrix of vertex counts: PairVolume[i][j] =
// |Vij|.
func (r *Relation) PairVolume() [][]int64 {
	out := make([][]int64, r.K)
	for i := range out {
		out[i] = make([]int64, r.K)
		for j := range out[i] {
			out[i][j] = int64(len(r.Send[i][j]))
		}
	}
	return out
}

// Validate cross-checks the internal consistency of the relation.
func (r *Relation) Validate() error {
	for src := 0; src < r.K; src++ {
		if r.Send[src][src] != nil {
			return fmt.Errorf("comm: GPU %d sends to itself", src)
		}
		for dst := 0; dst < r.K; dst++ {
			for _, v := range r.Send[src][dst] {
				if int(r.Owner[v]) != src {
					return fmt.Errorf("comm: GPU %d sends vertex %d owned by %d", src, v, r.Owner[v])
				}
			}
		}
	}
	// Every remote requirement must be covered by exactly the owner's send set.
	for d := 0; d < r.K; d++ {
		covered := make(map[int32]bool)
		for src := 0; src < r.K; src++ {
			for _, v := range r.Send[src][d] {
				if covered[v] {
					return fmt.Errorf("comm: vertex %d sent to GPU %d twice", v, d)
				}
				covered[v] = true
			}
		}
		if len(covered) != len(r.Remote[d]) {
			return fmt.Errorf("comm: GPU %d needs %d remotes but receives %d", d, len(r.Remote[d]), len(covered))
		}
		for _, v := range r.Remote[d] {
			if !covered[v] {
				return fmt.Errorf("comm: GPU %d remote vertex %d not sent by anyone", d, v)
			}
		}
	}
	return nil
}

// LocalGraph is the re-indexed graph a single GPU trains on: vertices
// [0,NumLocal) are the GPU's own vertices (in Local[d] order) and vertices
// [NumLocal, NumLocal+NumRemote) are its remote vertices (in Remote[d]
// order). Edges are the partition-local edges Ed with endpoints re-indexed;
// the GNN system can run on it unmodified, as the paper requires.
type LocalGraph struct {
	GPU       int
	NumLocal  int
	NumRemote int
	G         *graph.Graph
	GlobalID  []int32 // local index -> global vertex id
}

// LocalIndex returns the local index of global vertex v on this GPU, or -1.
func (lg *LocalGraph) LocalIndex(v int32) int {
	// GlobalID is sorted in two runs (locals then remotes); binary search each.
	if i := searchInt32(lg.GlobalID[:lg.NumLocal], v); i >= 0 {
		return i
	}
	if i := searchInt32(lg.GlobalID[lg.NumLocal:], v); i >= 0 {
		return lg.NumLocal + i
	}
	return -1
}

func searchInt32(s []int32, v int32) int {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return i
	}
	return -1
}

// BuildLocalGraphs constructs the per-GPU re-indexed graphs.
func BuildLocalGraphs(g *graph.Graph, r *Relation) []*LocalGraph {
	out := make([]*LocalGraph, r.K)
	for d := 0; d < r.K; d++ {
		nl, nr := len(r.Local[d]), len(r.Remote[d])
		globalID := make([]int32, 0, nl+nr)
		globalID = append(globalID, r.Local[d]...)
		globalID = append(globalID, r.Remote[d]...)
		index := make(map[int32]int32, nl+nr)
		for i, v := range globalID {
			index[v] = int32(i)
		}
		var edges []graph.Edge
		for li, u := range r.Local[d] {
			for _, v := range g.Neighbors(u) {
				edges = append(edges, graph.Edge{Src: int32(li), Dst: index[v]})
			}
		}
		out[d] = &LocalGraph{
			GPU:       d,
			NumLocal:  nl,
			NumRemote: nr,
			G:         graph.MustFromEdges(nl+nr, edges, false),
			GlobalID:  globalID,
		}
	}
	return out
}
