package experiments

import (
	"fmt"
	"time"

	"dgcl/internal/core"
	"dgcl/internal/graph"
)

// PlanTime measures planner runtime (the one place wall-clock is allowed,
// see DESIGN.md conventions): serial SPST, batched-parallel SPST, and a warm
// content-addressed cache hit, plus the modeled-cost ratio the parallel plan
// pays for its speed. The parallel speedup on a single-core runner comes
// from the frozen-snapshot cost cache, not concurrency; on multi-core
// machines the waves additionally overlap.
func PlanTime(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "plantime", Title: "SPST planning wall time: serial vs batched-parallel vs warm cache",
		Header: []string{"Dataset", "GPUs", "Serial(ms)", "W2(ms)", "W4(ms)", "W4 speedup", "W4 cost ratio", "Warm cache(ms)"}}
	for _, ds := range []graph.Dataset{graph.Reddit, graph.WebGoogle} {
		w, err := buildWorkload(cfg, ds, 16)
		if err != nil {
			return nil, err
		}
		bytesPerVertex := int64(ds.FeatureDim) * 4

		plan := func(workers int) (float64, float64, error) {
			opts := core.SPSTOptions{Seed: cfg.Seed, Workers: workers}
			start := time.Now()
			_, state, err := core.PlanSPST(w.rel, w.topo, bytesPerVertex, opts)
			if err != nil {
				return 0, 0, err
			}
			return time.Since(start).Seconds(), state.Cost(), nil
		}
		serialT, serialCost, err := plan(1)
		if err != nil {
			return nil, err
		}
		w2T, _, err := plan(2)
		if err != nil {
			return nil, err
		}
		w4T, w4Cost, err := plan(4)
		if err != nil {
			return nil, err
		}

		cache := core.NewPlanCache("")
		opts := core.SPSTOptions{Seed: cfg.Seed}
		if _, _, err := cache.PlanSPST(w.rel, w.topo, bytesPerVertex, opts); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, _, err := cache.PlanSPST(w.rel, w.topo, bytesPerVertex, opts); err != nil {
			return nil, err
		}
		warmT := time.Since(start).Seconds()

		r.Rows = append(r.Rows, []string{ds.Name, "16",
			ms(serialT), ms(w2T), ms(w4T),
			fmt.Sprintf("%.2fx", serialT/w4T),
			fmt.Sprintf("%.3f", w4Cost/serialCost),
			ms(warmT)})
	}
	r.Notes = append(r.Notes,
		"parallel plans trade bounded staleness for speed; the cost ratio is the quality price (tolerances pinned in internal/core tests)",
		"warm cache replays a stored plan through the cost model without invoking the tree search at all")
	return r, nil
}
