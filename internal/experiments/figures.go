package experiments

import (
	"fmt"
	"math"
	"sort"

	"dgcl/internal/baselines"
	"dgcl/internal/core"
	"dgcl/internal/device"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/simnet"
)

// Figure2 profiles peer-to-peer communication for a 2-layer GCN across GPU
// counts: computation time, communication overhead, and per-GPU
// communication volume.
func Figure2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "fig2", Title: "P2P comm overhead vs compute for 2-layer GCN (full-size extrapolation)",
		Header: []string{"Dataset", "GPUs", "Compute(ms)", "Comm(ms)", "Comm share", "Volume/GPU(MB)"}}
	for _, ds := range []graph.Dataset{graph.WebGoogle, graph.Reddit} {
		for _, k := range []int{2, 4, 8, 16} {
			w, err := buildWorkload(cfg, ds, k)
			if err != nil {
				return nil, err
			}
			res, err := runScheme(cfg, w, gnn.GCN, schemeP2P)
			if err != nil {
				return nil, err
			}
			// Per-GPU per-epoch communication volume (both layers, forward
			// and backward), extrapolated to full size.
			var bytesPerGPU float64
			for _, dim := range w.layerDims() {
				bytesPerGPU += 2 * float64(w.rel.TotalRemoteVertices()) * float64(dim) * 4 / float64(k)
			}
			bytesPerGPU *= float64(cfg.Scale)
			share := res.CommTime / res.total()
			r.Rows = append(r.Rows, []string{ds.Name, fmt.Sprintf("%d", k),
				fullMS(res.ComputeTime, cfg.Scale), fullMS(res.CommTime, cfg.Scale),
				fmt.Sprintf("%.0f%%", share*100), fmt.Sprintf("%.1f", bytesPerGPU/1e6)})
		}
	}
	r.Notes = append(r.Notes, "paper shape: comm time grows with GPU count, >50% of epoch at 8 GPUs, >90% at 16 (cross-machine IB)")
	return r, nil
}

// Figure4 computes replication factors by hop count and GPU count.
func Figure4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "fig4", Title: "Replication factor for K-hop replication",
		Header: []string{"Dataset", "GPUs", "1-hop", "2-hop", "3-hop"}}
	for _, ds := range []graph.Dataset{graph.WebGoogle, graph.Reddit} {
		g := ds.Generate(cfg.Scale, cfg.Seed)
		for _, k := range []int{2, 4, 8, 16} {
			p, err := partition.KWay(g, k, partition.Options{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			row := []string{ds.Name, fmt.Sprintf("%d", k)}
			for hops := 1; hops <= 3; hops++ {
				ri := baselines.Replication(g, p, hops)
				row = append(row, fmt.Sprintf("%.2f", ri.Factor))
			}
			r.Rows = append(r.Rows, row)
		}
	}
	r.Notes = append(r.Notes, "paper shape: factor grows with GPUs and hops; Reddit 2-hop ≈ 3-hop ≈ whole graph per GPU")
	return r, nil
}

// Figure7 is the headline evaluation: per-epoch and communication time for
// the three models on the four datasets under the four schemes, 8 GPUs.
func Figure7(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "fig7", Title: "Per-epoch time (ms, full-size) with 8 GPUs: total (comm)",
		Header: []string{"Dataset", "Model", "DGCL", "Swap", "Peer-to-peer", "Replication"}}
	for _, ds := range graph.AllDatasets {
		w, err := buildWorkload(cfg, ds, 8)
		if err != nil {
			return nil, err
		}
		for _, kind := range gnn.AllModels {
			row := []string{ds.Name, string(kind)}
			for _, s := range []scheme{schemeDGCL, schemeSwap, schemeP2P, schemeReplication} {
				res, err := runScheme(cfg, w, kind, s)
				if err != nil {
					return nil, err
				}
				if res.OOM {
					row = append(row, "OOM")
				} else {
					row = append(row, fmt.Sprintf("%s (%s)", fullMS(res.total(), cfg.Scale), fullMS(res.CommTime, cfg.Scale)))
				}
			}
			r.Rows = append(r.Rows, row)
		}
	}
	r.Notes = append(r.Notes,
		"paper shape: DGCL shortest everywhere; Swap worst on sparse graphs; Replication OOM on Com-Orkut/Wiki-Talk, slow on Reddit, competitive on Web-Google")
	return r, nil
}

// gpuSweep implements Figures 8 and 9: one (model, dataset) across GPU
// counts for all schemes.
func gpuSweep(cfg Config, id, title string, ds graph.Dataset, kind gnn.ModelKind) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: id, Title: title,
		Header: []string{"GPUs", "DGCL", "Swap", "Peer-to-peer", "Replication", "DGCL comm", "P2P comm"}}
	for _, k := range []int{1, 2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", k)}
		if k == 1 {
			// Single GPU: no communication; OOM check against full size.
			g := ds.Generate(cfg.Scale, cfg.Seed)
			model := gnn.NewModel(kind, ds.FeatureDim, ds.HiddenDim, cfg.Layers, 1)
			gpu := device.V100()
			if gpu.CheckFits(model, int64(ds.Vertices), ds.Edges, ds.FeatureDim) != nil {
				row = append(row, "OOM", "OOM", "OOM", "OOM", "-", "-")
			} else {
				t := gpu.EpochComputeTime(model, int64(g.NumVertices()), g.NumEdges())
				v := fullMS(t, cfg.Scale)
				row = append(row, v, v, v, v, "0.00", "0.00")
			}
			r.Rows = append(r.Rows, row)
			continue
		}
		w, err := buildWorkload(cfg, ds, k)
		if err != nil {
			return nil, err
		}
		var dgclComm, p2pComm string
		for _, s := range []scheme{schemeDGCL, schemeSwap, schemeP2P, schemeReplication} {
			if s == schemeSwap && k == 16 {
				row = append(row, "n/a") // NeuGraph swap is single-machine
				continue
			}
			res, err := runScheme(cfg, w, kind, s)
			if err != nil {
				return nil, err
			}
			if res.OOM {
				row = append(row, "OOM")
			} else {
				row = append(row, fullMS(res.total(), cfg.Scale))
			}
			if s == schemeDGCL {
				dgclComm = fullMS(res.CommTime, cfg.Scale)
			}
			if s == schemeP2P {
				p2pComm = fullMS(res.CommTime, cfg.Scale)
			}
		}
		row = append(row, dgclComm, p2pComm)
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "paper shape: DGCL == P2P comm at <=4 GPUs (all NVLink); DGCL clearly ahead at 8 and 16")
	return r, nil
}

// Figure8 sweeps GCN on Reddit over GPU counts.
func Figure8(cfg Config) (*Report, error) {
	return gpuSweep(cfg, "fig8", "GCN on Reddit: per-epoch time (ms, full-size) vs GPU count", graph.Reddit, gnn.GCN)
}

// Figure9 sweeps GIN on Web-Google over GPU counts.
func Figure9(cfg Config) (*Report, error) {
	return gpuSweep(cfg, "fig9", "GIN on Web-Google: per-epoch time (ms, full-size) vs GPU count", graph.WebGoogle, gnn.GIN)
}

// Figure10 validates the cost model: estimated cost versus simulated time
// for allgathers of varying volume must be linear.
func Figure10(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "fig10", Title: "Cost model estimate vs simulated time (linearity check)",
		Header: []string{"Dataset", "Volume frac", "Estimated (model units)", "Simulated (ms)"}}
	for _, ds := range []graph.Dataset{graph.WebGoogle, graph.Reddit} {
		w, err := buildWorkload(cfg, ds, 8)
		if err != nil {
			return nil, err
		}
		m, err := core.NewModel(w.topo)
		if err != nil {
			return nil, err
		}
		net, err := simnet.New(w.topo, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		plan, _, err := core.PlanSPST(w.rel, w.topo, int64(ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		var pts []xy
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			sub := subsamplePlan(plan, frac)
			est := core.CostOfPlan(m, sub)
			res, err := net.RunPlan(sub)
			if err != nil {
				return nil, err
			}
			pts = append(pts, xy{est, res.Time})
			r.Rows = append(r.Rows, []string{ds.Name, fmt.Sprintf("%.2f", frac),
				fmt.Sprintf("%.4g", est), ms(res.Time)})
		}
		// Pearson correlation of the points.
		r.Notes = append(r.Notes, fmt.Sprintf("%s: correlation(estimate, simulated) = %.4f", ds.Name, pearson(pts)))
	}
	r.Notes = append(r.Notes, "paper: actual time is linear in estimated cost with <5% divergence from the fitted line")
	return r, nil
}

type xy = struct{ x, y float64 }

func pearson(pts []xy) float64 {
	n := float64(len(pts))
	var sx, sy, sxx, syy, sxy float64
	for _, p := range pts {
		sx += p.x
		sy += p.y
		sxx += p.x * p.x
		syy += p.y * p.y
		sxy += p.x * p.y
	}
	num := n*sxy - sx*sy
	den := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if den == 0 {
		return 0
	}
	return num / den
}

// subsamplePlan keeps the first frac of every transfer's vertices,
// emulating the paper's "communicating only some vertices" volume control.
func subsamplePlan(p *core.Plan, frac float64) *core.Plan {
	out := core.NewPlan(p.K, p.BytesPerVertex, p.Algorithm+"-sub")
	for _, st := range p.Stages {
		var ns []core.Transfer
		for _, t := range st {
			n := int(float64(len(t.Vertices)) * frac)
			if n == 0 && len(t.Vertices) > 0 && frac > 0 {
				n = 1
			}
			ns = append(ns, core.Transfer{Src: t.Src, Dst: t.Dst, Vertices: t.Vertices[:n]})
		}
		out.Stages = append(out.Stages, ns)
	}
	return out
}

// Figure11 reports the ratio between send/receive table memory and training
// memory.
func Figure11(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "fig11", Title: "Send/receive table memory over training memory (per mille)",
		Header: []string{"GPUs", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"}}
	for _, k := range []int{8, 16} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, ds := range graph.AllDatasets {
			w, err := buildWorkload(cfg, ds, k)
			if err != nil {
				return nil, err
			}
			plan, _, err := core.PlanSPST(w.rel, w.topo, int64(ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			model := w.newModel(gnn.GCN)
			maxV, maxE := w.maxLocalLoad()
			training := device.TrainingMemoryBytes(model, maxV, maxE, ds.FeatureDim) * int64(k)
			ratio := float64(plan.TableMemoryBytes()) / float64(training) * 1000
			row = append(row, fmt.Sprintf("%.3f", ratio))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "paper: ratio below 2 per mille in all cases")
	return r, nil
}

// All lists every experiment id in paper order.
func All() []string {
	return []string{"table1", "fig2", "table2", "table3", "table4", "fig4", "fig7", "fig8", "fig9",
		"table5", "table6", "fig10", "table7", "table8", "fig11", "table9", "ablations", "scaling", "overlap", "plantime"}
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Report, error) {
	switch id {
	case "table1":
		return Table1(cfg)
	case "table2":
		return Table2(cfg)
	case "table3":
		return Table3(cfg)
	case "table4":
		return Table4(cfg)
	case "table5":
		return Table5(cfg)
	case "table6":
		return Table6(cfg)
	case "table7":
		return Table7(cfg)
	case "table8":
		return Table8(cfg)
	case "table9":
		return Table9(cfg)
	case "fig2":
		return Figure2(cfg)
	case "fig4":
		return Figure4(cfg)
	case "fig7":
		return Figure7(cfg)
	case "fig8":
		return Figure8(cfg)
	case "fig9":
		return Figure9(cfg)
	case "fig10":
		return Figure10(cfg)
	case "fig11":
		return Figure11(cfg)
	case "ablations":
		return Ablations(cfg)
	case "scaling":
		return Scaling(cfg)
	case "overlap":
		return Overlap(cfg)
	case "plantime":
		return PlanTime(cfg)
	}
	ids := All()
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}
