package experiments

import (
	"fmt"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/simnet"
	"dgcl/internal/topology"
)

// Scaling extends Figure 8 beyond the paper's hardware: GCN on Reddit over
// 1-4 IB-switched DGX-1 machines (8/16/24/32 GPUs), comparing DGCL and
// peer-to-peer per-epoch times. The paper observes scaling degrading at 16
// GPUs because of the shared NIC; with one NIC per machine on a switch, the
// per-machine NIC remains the bottleneck and the trend continues.
func Scaling(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "scaling",
		Title:  "GCN on Reddit beyond the paper: per-epoch (ms, full-size) on 1-4 IB-switched machines",
		Header: []string{"Machines", "GPUs", "DGCL", "P2P", "DGCL comm", "P2P comm", "Speedup vs 8-GPU DGCL"}}
	ds := graph.Reddit
	g := ds.Generate(cfg.Scale, cfg.Seed)
	var base float64
	for machines := 1; machines <= 4; machines++ {
		k := 8 * machines
		topo := topology.MultiMachineDGX1(machines)
		var p *partition.Partition
		var err error
		if machines == 1 {
			p, err = partition.KWay(g, k, partition.Options{Seed: cfg.Seed})
		} else {
			per := make([]int, machines)
			for i := range per {
				per[i] = 8
			}
			p, err = partition.Hierarchical(g, per, partition.Options{Seed: cfg.Seed})
		}
		if err != nil {
			return nil, err
		}
		rel, err := comm.Build(g, p)
		if err != nil {
			return nil, err
		}
		w := &workload{ds: ds, g: g, part: p, rel: rel, topo: topo, k: k, scale: cfg.Scale, layers: cfg.Layers}
		net, err := simnet.New(topo, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		model := w.newModel(gnn.GCN)
		gpu := gpuFor(topo)
		maxV, maxE := w.maxLocalLoad()
		compute := gpu.EpochComputeTime(model, maxV, maxE)

		plan, _, err := core.PlanSPST(rel, topo, int64(ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		dgclComm, err := commTimePerEpoch(w, plan, net)
		if err != nil {
			return nil, err
		}
		p2pComm, err := commTimePerEpoch(w, baselines.PlanP2P(rel, int64(ds.FeatureDim)*4), net)
		if err != nil {
			return nil, err
		}
		dgclTotal := compute + dgclComm
		if machines == 1 {
			base = dgclTotal
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", machines), fmt.Sprintf("%d", k),
			fullMS(dgclTotal, cfg.Scale), fullMS(compute+p2pComm, cfg.Scale),
			fullMS(dgclComm, cfg.Scale), fullMS(p2pComm, cfg.Scale),
			fmt.Sprintf("%.2fx", base/dgclTotal),
		})
	}
	r.Notes = append(r.Notes,
		"beyond-paper projection: per-machine NICs bound cross-machine traffic, so dense graphs stop scaling past one machine — the paper's 16-GPU observation generalizes")
	return r, nil
}
