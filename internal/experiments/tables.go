package experiments

import (
	"fmt"
	"time"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/device"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/simnet"
	"dgcl/internal/topology"
)

// fullMS extrapolates a time measured at 1/scale size to full-size ms.
func fullMS(seconds float64, scale int) string {
	return fmt.Sprintf("%.2f", seconds*float64(scale)*1e3)
}

// Table1 measures each link type's attainable point-to-point bandwidth on
// the simulated fabrics and compares with the paper's Table 1 speeds.
func Table1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table1", Title: "Speed (GB/s) of common communication links",
		Header: []string{"Type", "Measured", "Paper"}}
	type probe struct {
		name  string
		topo  *topology.Topology
		pair  [2]int
		paper float64
	}
	probes := []probe{
		{"NV2", topology.DGX1(), [2]int{0, 3}, 48.35},
		{"NV1", topology.DGX1(), [2]int{0, 1}, 24.22},
		{"PCIe", topology.PCIeOnly8(), [2]int{0, 1}, 11.13},
		{"QPI", topology.DGX1(), [2]int{0, 5}, 9.56},
		{"IB", topology.TwoMachineDGX1(), [2]int{0, 8}, 6.37},
		{"Ethernet", topology.TwoMachineEthernet(), [2]int{0, 8}, 3.12},
	}
	for _, p := range probes {
		net, err := simnet.New(p.topo, simnet.Config{Seed: cfg.Seed, ContentionExponent: 1})
		if err != nil {
			return nil, err
		}
		bw, err := net.MeasureFlows([][2]int{p.pair}, 1<<28)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{p.name, fmt.Sprintf("%.2f", bw[0]/1e9), fmt.Sprintf("%.2f", p.paper)})
	}
	return r, nil
}

// Table2 reports the time peer-to-peer spends on NVLink versus other links
// for one GCN layer's allgather with 8 GPUs.
func Table2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table2", Title: "P2P time (ms, full-size) on different links, 8 GPUs, one GCN layer",
		Header: []string{"Dataset", "NVLink", "Others"}}
	for _, ds := range []graph.Dataset{graph.WebGoogle, graph.Reddit, graph.WikiTalk} {
		w, err := buildWorkload(cfg, ds, 8)
		if err != nil {
			return nil, err
		}
		plan := baselines.PlanP2P(w.rel, int64(ds.FeatureDim)*4)
		net, err := simnet.New(w.topo, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		res, err := net.RunPlan(plan)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{ds.Name, fullMS(res.NVLinkTime, cfg.Scale), fullMS(res.OtherTime, cfg.Scale)})
	}
	r.Notes = append(r.Notes, "paper: NVLink 0.99/1.70/1.39 ms vs Others 6.20/18.1/6.13 ms — slow links dominate P2P")
	return r, nil
}

// Table3 measures attainable per-GPU bandwidth over QPI under 1..3
// concurrent flows.
func Table3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table3", Title: "Attainable bandwidth (GB/s) of a GPU sharing the QPI link",
		Header: []string{"GPUs", "Measured", "Paper"}}
	net, err := simnet.New(topology.DGX1(), simnet.Config{Seed: cfg.Seed, ContentionExponent: 0.95})
	if err != nil {
		return nil, err
	}
	pairs := [][2]int{{0, 5}, {1, 4}, {2, 4}}
	paper := []float64{9.50, 5.12, 3.34}
	for k := 1; k <= 3; k++ {
		bw, err := net.MeasureFlows(pairs[:k], 1<<28)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", bw[0]/1e9), fmt.Sprintf("%.2f", paper[k-1])})
	}
	return r, nil
}

// Table5 compares DGCL against DGCL-R (replication across machines, DGCL
// within) on 16 GPUs for GCN and GIN on Web-Google and Reddit.
func Table5(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table5", Title: "Per-epoch time (ms, full-size) on 16 GPUs: DGCL vs DGCL-R",
		Header: []string{"Model", "Dataset", "DGCL", "DGCL-R"}}
	for _, kind := range []gnn.ModelKind{gnn.GCN, gnn.GIN} {
		for _, ds := range []graph.Dataset{graph.WebGoogle, graph.Reddit} {
			w, err := buildWorkload(cfg, ds, 16)
			if err != nil {
				return nil, err
			}
			plain, err := runScheme(cfg, w, kind, schemeDGCL)
			if err != nil {
				return nil, err
			}
			dgclR, err := runDGCLR(cfg, ds, kind)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, []string{string(kind), ds.Name,
				fullMS(plain.total(), cfg.Scale), fullMS(dgclR.total(), cfg.Scale)})
		}
	}
	r.Notes = append(r.Notes, "paper shape: DGCL-R wins for GCN/Web-Google (comm-bound), loses for GIN (recompute) and Reddit (dense halo)")
	return r, nil
}

// runDGCLR simulates the DGCL-R hybrid: the graph is split across the two
// machines, each machine replicates the K-hop halo of its half (eliminating
// inter-machine traffic), and DGCL plans communication among the 8 GPUs of
// each machine over the expanded subgraph. Per-epoch time is the slower
// machine's compute + intra-machine communication.
func runDGCLR(cfg Config, ds graph.Dataset, kind gnn.ModelKind) (epochResult, error) {
	cfg = cfg.withDefaults()
	g := ds.Generate(cfg.Scale, cfg.Seed)
	machineSplit, err := partition.KWay(g, 2, partition.Options{Seed: cfg.Seed})
	if err != nil {
		return epochResult{}, err
	}
	top := machineSplit.Assign
	gpu := device.V100()
	model := gnn.NewModel(kind, ds.FeatureDim, ds.HiddenDim, cfg.Layers, 1)
	var worst epochResult
	for m := 0; m < 2; m++ {
		var members []int32
		for v, p := range top {
			if int(p) == m {
				members = append(members, int32(v))
			}
		}
		stored := g.KHopNeighborhood(members, cfg.Layers, true)
		sub, _ := g.InducedSubgraph(stored)
		res, err := machineEpoch(cfg, ds, sub, kind, model, gpu)
		if err != nil {
			return epochResult{}, err
		}
		// Full-size OOM check for the replicated machine halo split 8 ways.
		frac := float64(len(stored)) / float64(g.NumVertices()) / 8 * 2 // halo per GPU, 2x slack
		if gpu.CheckFits(model, int64(frac*float64(ds.Vertices)), int64(frac*float64(ds.Edges)), ds.FeatureDim) != nil {
			res.OOM = true
		}
		if res.total() > worst.total() || res.OOM {
			worst = res
		}
	}
	return worst, nil
}

// machineEpoch runs one machine's 8-GPU DGCL epoch over its (expanded)
// subgraph.
func machineEpoch(cfg Config, ds graph.Dataset, sub *graph.Graph, kind gnn.ModelKind, model *gnn.Model, gpu device.GPU) (epochResult, error) {
	w := &workload{ds: ds, g: sub, k: 8, scale: cfg.Scale, layers: cfg.Layers, topo: topology.DGX1()}
	p, err := partition.KWay(sub, 8, partition.Options{Seed: cfg.Seed})
	if err != nil {
		return epochResult{}, err
	}
	w.part = p
	w.rel, err = comm.Build(sub, p)
	if err != nil {
		return epochResult{}, err
	}
	plan, _, err := core.PlanSPST(w.rel, w.topo, int64(ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed})
	if err != nil {
		return epochResult{}, err
	}
	net, err := simnet.New(w.topo, simConfig(cfg))
	if err != nil {
		return epochResult{}, err
	}
	commT, err := commTimePerEpoch(w, plan, net)
	if err != nil {
		return epochResult{}, err
	}
	maxV, maxE := w.maxLocalLoad()
	return epochResult{CommTime: commT, ComputeTime: gpu.EpochComputeTime(model, maxV, maxE)}, nil
}

// Table6 measures one graphAllgather on the PCIe-only configuration.
func Table6(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table6", Title: "graphAllgather time (ms, full-size) without NVLink, feature 128, 8 GPUs",
		Header: []string{"Scheme", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"}}
	const dim = 128
	times := map[scheme][]string{}
	order := []scheme{schemeDGCL, schemeSwap, schemeP2P}
	for _, ds := range graph.AllDatasets {
		g := ds.Generate(cfg.Scale, cfg.Seed)
		p, err := partition.KWay(g, 8, partition.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		rel, err := comm.Build(g, p)
		if err != nil {
			return nil, err
		}
		topo := topology.PCIeOnly8()
		net, err := simnet.New(topo, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		plan, _, err := core.PlanSPST(rel, topo, dim*4, core.SPSTOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		res, err := net.RunPlan(plan)
		if err != nil {
			return nil, err
		}
		times[schemeDGCL] = append(times[schemeDGCL], fullMS(res.Time, cfg.Scale))
		sp, err := baselines.PlanSwap(rel, topo, dim*4)
		if err != nil {
			return nil, err
		}
		sres, err := net.RunSwap(sp)
		if err != nil {
			return nil, err
		}
		times[schemeSwap] = append(times[schemeSwap], fullMS(sres.Time, cfg.Scale))
		pres, err := net.RunPlan(baselines.PlanP2P(rel, dim*4))
		if err != nil {
			return nil, err
		}
		times[schemeP2P] = append(times[schemeP2P], fullMS(pres.Time, cfg.Scale))
	}
	for _, s := range order {
		r.Rows = append(r.Rows, append([]string{string(s)}, times[s]...))
	}
	r.Notes = append(r.Notes, "paper: DGCL < P2P < Swap (except Reddit where Swap ~ DGCL); DGCL's edge here comes from contention avoidance, not NVLink")
	return r, nil
}

// Table7 decomposes DGCL's allgather time into NVLink versus other links,
// showing SPST's load balancing across link classes.
func Table7(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table7", Title: "DGCL communication time (ms, full-size) breakdown by link class, 8 GPUs",
		Header: []string{"Dataset", "NVLink", "Others", "Relative diff"}}
	for _, ds := range graph.AllDatasets {
		w, err := buildWorkload(cfg, ds, 8)
		if err != nil {
			return nil, err
		}
		plan, _, err := core.PlanSPST(w.rel, w.topo, int64(ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		m, err := core.NewModel(w.topo)
		if err != nil {
			return nil, err
		}
		nv, ot := core.LinkClassBreakdown(m, plan)
		diff := 0.0
		if mx := maxf(nv, ot); mx > 0 {
			diff = (mx - minf(nv, ot)) / mx
		}
		r.Rows = append(r.Rows, []string{ds.Name, fullMS(nv, cfg.Scale), fullMS(ot, cfg.Scale), fmt.Sprintf("%.1f%%", diff*100)})
	}
	r.Notes = append(r.Notes, "paper: breakdown within ~13% — SPST balances load across link classes")
	return r, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Table8 measures the wall-clock running time of the SPST planner itself.
func Table8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table8", Title: "Running time (s) of SPST planning (measured wall clock, scaled graphs)",
		Header: []string{"GPUs", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"}}
	for _, k := range []int{2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, ds := range graph.AllDatasets {
			w, err := buildWorkload(cfg, ds, k)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, _, err := core.PlanSPST(w.rel, w.topo, int64(ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed, ChunkSize: 1}); err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", time.Since(start).Seconds()))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"paper (full-size, single thread): seconds-scale, growing ~linearly with GPUs and graph size",
		fmt.Sprintf("graphs here are 1/%d of full size; multiply by ~%d for full-size planning time", cfg.Scale, cfg.Scale))
	return r, nil
}

// Table9 compares atomic vs non-atomic backward graphAllgather.
func Table9(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table9", Title: "Backward graphAllgather time (ms, full-size), hidden 128, 8 GPUs",
		Header: []string{"Mode", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"}}
	const dim = 128
	var atomicRow, nonAtomicRow []string
	for _, ds := range graph.AllDatasets {
		w, err := buildWorkload(cfg, ds, 8)
		if err != nil {
			return nil, err
		}
		plan, _, err := core.PlanSPST(w.rel, w.topo, dim*4, core.SPSTOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		net, err := simnet.New(w.topo, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		a, err := net.RunBackward(plan, false)
		if err != nil {
			return nil, err
		}
		n, err := net.RunBackward(plan, true)
		if err != nil {
			return nil, err
		}
		atomicRow = append(atomicRow, fullMS(a.Time, cfg.Scale))
		nonAtomicRow = append(nonAtomicRow, fullMS(n.Time, cfg.Scale))
	}
	r.Rows = append(r.Rows, append([]string{"Atomic"}, atomicRow...))
	r.Rows = append(r.Rows, append([]string{"Non-atomic"}, nonAtomicRow...))
	r.Notes = append(r.Notes, "paper: non-atomic reduces backward allgather by ~25-35%")
	return r, nil
}
