package experiments

import (
	"fmt"

	"dgcl/internal/baselines"
	"dgcl/internal/collective"
	"dgcl/internal/core"
	"dgcl/internal/graph"
)

// Ablations renders the planner design-choice study DESIGN.md calls for:
// for each dataset at 8 GPUs, the §5.1-modeled allgather cost of the full
// SPST planner against every degraded variant and strawman. (The testing.B
// benches in ablation_bench_test.go measure the same quantities
// individually; this report puts them side by side.)
func Ablations(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "ablations",
		Title:  "Modeled allgather cost (ms, full-size): SPST vs degraded planners, 8 GPUs",
		Header: []string{"Dataset", "SPST", "no-forwarding", "tree-per-src", "Steiner", "P2P", "NCCL-volume-x"}}
	for _, ds := range graph.AllDatasets {
		w, err := buildWorkload(cfg, ds, 8)
		if err != nil {
			return nil, err
		}
		m, err := core.NewModel(w.topo)
		if err != nil {
			return nil, err
		}
		bpv := int64(ds.FeatureDim) * 4
		row := []string{ds.Name}
		var spstBytes int64
		for _, variant := range []core.SPSTOptions{
			{Seed: cfg.Seed},
			{Seed: cfg.Seed, DisableForwarding: true},
			{Seed: cfg.Seed, TreePerSource: true},
		} {
			plan, state, err := core.PlanSPST(w.rel, w.topo, bpv, variant)
			if err != nil {
				return nil, err
			}
			if !variant.DisableForwarding && !variant.TreePerSource {
				spstBytes = plan.TotalBytes()
			}
			row = append(row, fullMS(state.Cost(), cfg.Scale))
		}
		steiner, err := baselines.PlanSteiner(w.rel, w.topo, bpv)
		if err != nil {
			return nil, err
		}
		row = append(row, fullMS(core.CostOfPlan(m, steiner), cfg.Scale))
		p2p := baselines.PlanP2P(w.rel, bpv)
		row = append(row, fullMS(core.CostOfPlan(m, p2p), cfg.Scale))
		// How much more volume a regular NCCL-style allgather would move.
		full := collective.FullAllgatherBytes(w.part.Sizes(), bpv)
		row = append(row, fmt.Sprintf("%.1f", float64(full)/float64(spstBytes)))
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"no-forwarding isolates fast-link relaying; tree-per-src isolates per-vertex flexibility;",
		"Steiner uses static link costs (the §5.2 strawman); NCCL-volume-x is the byte overshoot of a regular collective allgather (§3)")
	return r, nil
}
