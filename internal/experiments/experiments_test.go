package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testCfg keeps experiment tests fast: graphs at 1/256 of Table 4 sizes.
func testCfg() Config { return Config{Scale: 256, Seed: 1, Layers: 2} }

func parseMS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as ms: %v", s, err)
	}
	return v
}

func TestTable1MatchesPaperSpeeds(t *testing.T) {
	r, err := Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		got := parseMS(t, row[1])
		want := parseMS(t, row[2])
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("%s measured %.2f vs paper %.2f", row[0], got, want)
		}
	}
}

func TestTable2SlowLinksDominate(t *testing.T) {
	r, err := Table2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		nv, others := parseMS(t, row[1]), parseMS(t, row[2])
		if others <= nv {
			t.Errorf("%s: P2P 'others' time %.3f should dominate NVLink %.3f", row[0], others, nv)
		}
	}
}

func TestTable3ContentionShape(t *testing.T) {
	r, err := Table3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, row := range r.Rows {
		got := parseMS(t, row[1])
		want := parseMS(t, row[2])
		if got >= prev {
			t.Error("attainable bandwidth must fall with concurrency")
		}
		prev = got
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s flows: %.2f vs paper %.2f (>15%% off)", row[0], got, want)
		}
	}
}

func TestFigure2CommGrowsWithGPUs(t *testing.T) {
	r, err := Figure2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Per dataset, comm time at 16 GPUs should exceed comm at 2 GPUs, and the
	// comm share at 16 should be large (cross-machine IB).
	byDS := map[string][][]string{}
	for _, row := range r.Rows {
		byDS[row[0]] = append(byDS[row[0]], row)
	}
	for ds, rows := range byDS {
		first, last := rows[0], rows[len(rows)-1]
		if parseMS(t, last[3]) <= parseMS(t, first[3]) {
			t.Errorf("%s: comm time should grow from 2 to 16 GPUs (%s -> %s)", ds, first[3], last[3])
		}
		share := strings.TrimSuffix(last[4], "%")
		if v := parseMS(t, share); v < 50 {
			t.Errorf("%s: comm share at 16 GPUs only %v%%", ds, v)
		}
	}
}

func TestFigure4ReplicationShapes(t *testing.T) {
	r, err := Figure4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		h1, h2, h3 := parseMS(t, row[2]), parseMS(t, row[3]), parseMS(t, row[4])
		if !(h1 <= h2 && h2 <= h3) {
			t.Errorf("%s %s GPUs: factors not monotone in hops: %v %v %v", row[0], row[1], h1, h2, h3)
		}
		if h1 < 1 {
			t.Errorf("factor below 1: %v", h1)
		}
	}
	// Reddit at 8 GPUs, 2-hop should approach the GPU count (dense graph).
	for _, row := range r.Rows {
		if row[0] == "Reddit" && row[1] == "8" {
			if parseMS(t, row[3]) < 4 {
				t.Errorf("Reddit 8-GPU 2-hop factor %s should approach 8", row[3])
			}
		}
	}
}

// parseFig7Cell extracts total and comm ms from "12.34 (5.67)" or returns
// ok=false for OOM.
func parseFig7Cell(t *testing.T, cell string) (total, comm float64, ok bool) {
	t.Helper()
	if cell == "OOM" || cell == "n/a" {
		return 0, 0, false
	}
	parts := strings.SplitN(cell, " (", 2)
	total = parseMS(t, parts[0])
	comm = parseMS(t, strings.TrimSuffix(parts[1], ")"))
	return total, comm, true
}

func TestFigure7HeadlineShapes(t *testing.T) {
	r, err := Figure7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows=%d want 12", len(r.Rows))
	}
	for _, row := range r.Rows {
		ds, model := row[0], row[1]
		dgclT, dgclC, ok := parseFig7Cell(t, row[2])
		if !ok {
			t.Fatalf("%s/%s: DGCL must never OOM", ds, model)
		}
		if _, swapC, ok := parseFig7Cell(t, row[3]); ok && swapC < dgclC {
			t.Errorf("%s/%s: swap comm %.3f beat DGCL %.3f", ds, model, swapC, dgclC)
		}
		p2pT, p2pC, ok := parseFig7Cell(t, row[4])
		if !ok {
			t.Fatalf("%s/%s: P2P must not OOM", ds, model)
		}
		if p2pC < dgclC {
			t.Errorf("%s/%s: P2P comm %.3f beat DGCL %.3f", ds, model, p2pC, dgclC)
		}
		if p2pT < dgclT*0.99 {
			t.Errorf("%s/%s: P2P total %.3f beat DGCL %.3f", ds, model, p2pT, dgclT)
		}
		// Replication OOM exactly on the two big graphs.
		_, _, replOK := parseFig7Cell(t, row[5])
		wantOOM := ds == "Com-Orkut" || ds == "Wiki-Talk"
		if replOK == wantOOM {
			t.Errorf("%s/%s: replication OOM=%v want %v", ds, model, !replOK, wantOOM)
		}
	}
}

func TestFigure8And9Shapes(t *testing.T) {
	for _, id := range []string{"fig8", "fig9"} {
		r, err := Run(id, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 5 {
			t.Fatalf("%s rows=%d", id, len(r.Rows))
		}
		for _, row := range r.Rows {
			k := row[0]
			if k == "1" {
				continue
			}
			dgclComm := parseMS(t, row[5])
			p2pComm := parseMS(t, row[6])
			if p2pComm < dgclComm*0.99 {
				t.Errorf("%s at %s GPUs: P2P comm %.3f beat DGCL %.3f", id, k, p2pComm, dgclComm)
			}
			if k == "2" || k == "4" {
				// All-NVLink: DGCL ~ P2P (within 40%).
				if dgclComm > 0 && p2pComm/dgclComm > 1.4 {
					t.Errorf("%s at %s GPUs (all NVLink): P2P %.3f vs DGCL %.3f should be close", id, k, p2pComm, dgclComm)
				}
			}
			if k == "8" {
				if dgclComm > 0 && p2pComm/dgclComm < 1.2 {
					t.Errorf("%s at %s GPUs: expected clear DGCL advantage, got P2P %.3f vs DGCL %.3f", id, k, p2pComm, dgclComm)
				}
			}
			if k == "16" {
				// At 16 GPUs both schemes serialize on the single IB link;
				// DGCL's remaining edge is multicast fusion (each vertex
				// crosses the NIC once), worth >=15% on sparse graphs.
				if dgclComm > 0 && p2pComm/dgclComm < 1.15 {
					t.Errorf("%s at %s GPUs: expected DGCL fusion advantage, got P2P %.3f vs DGCL %.3f", id, k, p2pComm, dgclComm)
				}
			}
		}
	}
}

func TestTable5DGCLRShapes(t *testing.T) {
	r, err := Table5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][2]float64{}
	for _, row := range r.Rows {
		key := row[0] + "/" + row[1]
		vals[key] = [2]float64{parseMS(t, row[2]), parseMS(t, row[3])}
	}
	// Paper shape 1: DGCL-R beats DGCL for GCN on Web-Google (sparse graph,
	// comm-bound at 16 GPUs, cheap recompute).
	if v := vals["GCN/Web-Google"]; v[1] >= v[0] {
		t.Errorf("GCN/Web-Google: DGCL-R %.3f should beat DGCL %.3f", v[1], v[0])
	}
	// Paper shape 2: the recompute penalty erodes DGCL-R's advantage as the
	// model gets more compute-heavy — the DGCL-R/DGCL ratio must rise from
	// GCN to GIN on both datasets. (The absolute crossover point depends on
	// the compute/IB calibration; the penalty direction does not.)
	for _, ds := range []string{"Web-Google", "Reddit"} {
		gcn := vals["GCN/"+ds]
		gin := vals["GIN/"+ds]
		if gin[1]/gin[0] <= gcn[1]/gcn[0] {
			t.Errorf("%s: DGCL-R/DGCL ratio should rise from GCN (%.2f) to GIN (%.2f)",
				ds, gcn[1]/gcn[0], gin[1]/gin[0])
		}
	}
}

func TestTable6PCIeShapes(t *testing.T) {
	r, err := Table6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Row order: DGCL, Swap, P2P; columns: 4 datasets. On the NVLink-less
	// fabric DGCL's edge comes only from contention avoidance and load
	// balancing, so demand: never meaningfully worse than P2P anywhere, and
	// strictly better on at least two datasets.
	wins := 0
	for col := 1; col <= 4; col++ {
		dgcl := parseMS(t, r.Rows[0][col])
		swap := parseMS(t, r.Rows[1][col])
		p2p := parseMS(t, r.Rows[2][col])
		if dgcl > p2p*1.05 {
			t.Errorf("col %d: DGCL %.3f more than 5%% slower than P2P %.3f on PCIe-only", col, dgcl, p2p)
		}
		if dgcl < p2p*0.95 {
			wins++
		}
		if col != 1 && swap < dgcl {
			// Reddit (col 1) is the one case swap can be competitive.
			t.Errorf("col %d: swap %.3f beat DGCL %.3f", col, swap, dgcl)
		}
	}
	if wins < 2 {
		t.Errorf("DGCL should clearly beat P2P on at least 2 of 4 datasets, won %d", wins)
	}
}

func TestFigure10Linear(t *testing.T) {
	r, err := Figure10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "correlation") {
			parts := strings.Split(n, "= ")
			if v := parseMS(t, parts[len(parts)-1]); v < 0.98 {
				t.Errorf("cost model correlation %v below 0.98 (%s)", v, n)
			}
		}
	}
}

func TestTable7Balanced(t *testing.T) {
	r, err := Table7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		diff := parseMS(t, strings.TrimSuffix(row[3], "%"))
		if diff > 60 {
			t.Errorf("%s: link class imbalance %v%% too high for SPST", row[0], diff)
		}
	}
}

func TestTable8PlanningTimesReasonable(t *testing.T) {
	r, err := Table8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var prevRow []float64
	for _, row := range r.Rows {
		var cur []float64
		for _, c := range row[1:] {
			v := parseMS(t, c)
			if v < 0 || v > 120 {
				t.Fatalf("planning time %v out of range", v)
			}
			cur = append(cur, v)
		}
		prevRow = cur
	}
	_ = prevRow
}

func TestTable9NonAtomicWins(t *testing.T) {
	r, err := Table9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 4; col++ {
		atomic := parseMS(t, r.Rows[0][col])
		nonAtomic := parseMS(t, r.Rows[1][col])
		if nonAtomic >= atomic {
			t.Errorf("col %d: non-atomic %.4f should beat atomic %.4f", col, nonAtomic, atomic)
		}
	}
}

func TestFigure11TinyTables(t *testing.T) {
	r, err := Figure11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		for _, c := range row[1:] {
			if v := parseMS(t, c); v > 10 {
				t.Errorf("table memory ratio %v per mille too large", v)
			}
		}
	}
}

func TestRunRegistry(t *testing.T) {
	if _, err := Run("nope", testCfg()); err == nil {
		t.Fatal("unknown id must error")
	}
	for _, id := range All() {
		if id == "" {
			t.Fatal("empty id in registry")
		}
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := r.String()
	if !strings.Contains(s, "== x: t ==") || !strings.Contains(s, "note: n") {
		t.Fatalf("render: %q", s)
	}
}

func TestAblationsShapes(t *testing.T) {
	r, err := Ablations(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		spst := parseMS(t, row[1])
		noFwd := parseMS(t, row[2])
		treeSrc := parseMS(t, row[3])
		steiner := parseMS(t, row[4])
		p2p := parseMS(t, row[5])
		if spst > noFwd*1.02 || spst > treeSrc*1.02 || spst > steiner*1.05 || spst > p2p*1.02 {
			t.Errorf("%s: SPST %.3f must win: noFwd %.3f treeSrc %.3f steiner %.3f p2p %.3f",
				row[0], spst, noFwd, treeSrc, steiner, p2p)
		}
		if overshoot := parseMS(t, row[6]); overshoot < 0.95 {
			t.Errorf("%s: NCCL volume overshoot %.2f below 1", row[0], overshoot)
		}
	}
}

func TestTable4DatasetShapes(t *testing.T) {
	r, err := Table4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		avg := parseMS(t, row[3])
		target := parseMS(t, row[4])
		// Dense generators hit the degree target within 3x; sparse ones have
		// floors at tiny scales.
		if avg > target*3.5 {
			t.Errorf("%s avg degree %v overshoots target %v", row[0], avg, target)
		}
		if row[6] != "true" {
			t.Errorf("%s should be symmetric", row[0])
		}
	}
}

func TestScalingShapes(t *testing.T) {
	r, err := Scaling(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for i, row := range r.Rows {
		dgcl := parseMS(t, row[2])
		p2p := parseMS(t, row[3])
		if dgcl > p2p*1.02 {
			t.Errorf("machines=%s: DGCL %.3f should not lose to P2P %.3f", row[0], dgcl, p2p)
		}
		// Dense Reddit stops scaling past one machine: multi-machine DGCL
		// comm exceeds single-machine comm.
		if i > 0 {
			if parseMS(t, row[4]) <= parseMS(t, r.Rows[0][4]) {
				t.Errorf("machines=%s: cross-machine comm should exceed single-machine", row[0])
			}
		}
	}
}

func TestOverlapBounds(t *testing.T) {
	r, err := Overlap(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		seq := parseMS(t, row[2])
		pipe := parseMS(t, row[3])
		if pipe > seq {
			t.Errorf("%s/%s: pipelined %.3f exceeds sequential %.3f", row[0], row[1], pipe, seq)
		}
		if pipe < seq/2-1e-9 {
			t.Errorf("%s/%s: pipelined %.3f below the max(comm,compute) bound of seq/2", row[0], row[1], pipe)
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	md := r.Markdown()
	for _, want := range []string{"## x: t", "| a | b |", "|---|---|", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
