package experiments

import (
	"fmt"

	"dgcl/internal/graph"
)

// Table4 reports the statistics of the synthesized datasets against the
// paper's Table 4, demonstrating that the generators match the shape of the
// original graphs at the configured scale.
func Table4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table4",
		Title:  fmt.Sprintf("Synthesized dataset statistics at 1/%d scale vs Table 4 targets", cfg.Scale),
		Header: []string{"Dataset", "Vertices", "Edges", "AvgDeg", "TargetDeg", "MaxDeg", "Symmetric"}}
	for _, ds := range graph.AllDatasets {
		g := ds.Generate(cfg.Scale, cfg.Seed)
		s := g.ComputeStats()
		r.Rows = append(r.Rows, []string{
			ds.Name,
			fmt.Sprintf("%d", s.Vertices),
			fmt.Sprintf("%d", s.Edges),
			fmt.Sprintf("%.2f", s.AvgDegree),
			fmt.Sprintf("%.2f", ds.AvgDegree),
			fmt.Sprintf("%d", s.MaxDegree),
			fmt.Sprintf("%v", g.IsSymmetric()),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("targets (full size): Reddit 0.23M/110M, Com-Orkut 3.07M/117M, Web-Google 0.87M/5.1M, Wiki-Talk 2.39M/5.0M vertices/edges, scaled by 1/%d", cfg.Scale))
	return r, nil
}
