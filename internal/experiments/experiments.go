// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulated substrate. Each experiment returns a
// Report that cmd/dgclbench renders and EXPERIMENTS.md records. Graphs are
// synthesized at 1/Scale of the paper's sizes (Table 4); reported times are
// extrapolated back to full size by the linear scaling of both the cost
// model and the simulator, so magnitudes are comparable with the paper's
// milliseconds even though shape, not absolute value, is the reproduction
// target.
package experiments

import (
	"fmt"
	"strings"

	"dgcl/internal/baselines"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/device"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/simnet"
	"dgcl/internal/topology"
)

// Config controls experiment size and determinism.
type Config struct {
	// Scale divides the Table 4 dataset sizes (default 64; tests use more).
	Scale int
	// Seed drives every random choice.
	Seed int64
	// Layers is the GNN depth (the paper uses 2).
	Layers int
}

// Default returns the configuration used by cmd/dgclbench.
func Default() Config { return Config{Scale: 64, Seed: 1, Layers: 2} }

func (c Config) withDefaults() Config {
	if c.Scale < 1 {
		c.Scale = 64
	}
	if c.Layers < 1 {
		c.Layers = 2
	}
	return c
}

// Report is a rendered experiment result.
type Report struct {
	ID     string // e.g. "table1", "fig7"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms formats seconds as milliseconds with sensible precision.
func ms(seconds float64) string { return fmt.Sprintf("%.2f", seconds*1e3) }

// simConfig returns the simulator configuration for an experiment run. The
// per-message latencies are shrunk by the same factor as the graphs so the
// latency/bandwidth proportions match full size and the ×Scale time
// extrapolation is exact.
func simConfig(cfg Config) simnet.Config {
	cfg = cfg.withDefaults()
	c := simnet.DefaultConfig(cfg.Seed)
	c.LatencyScale = 1 / float64(cfg.Scale)
	return c
}

// workload bundles everything one (dataset, gpu-count) configuration needs.
type workload struct {
	ds     graph.Dataset
	g      *graph.Graph
	part   *partition.Partition
	rel    *comm.Relation
	topo   *topology.Topology
	k      int
	scale  int
	layers int
}

// buildWorkload synthesizes the dataset at cfg scale, picks the standard
// topology for k GPUs, and partitions (hierarchically across machines).
func buildWorkload(cfg Config, ds graph.Dataset, k int) (*workload, error) {
	cfg = cfg.withDefaults()
	g := ds.Generate(cfg.Scale, cfg.Seed)
	topo, err := topology.ForGPUCount(k)
	if err != nil {
		return nil, err
	}
	var p *partition.Partition
	if topo.NumMachines() > 1 {
		per := make([]int, topo.NumMachines())
		for d := 0; d < k; d++ {
			per[topo.GPUMachine(d)]++
		}
		p, err = partition.Hierarchical(g, per, partition.Options{Seed: cfg.Seed})
	} else {
		p, err = partition.KWay(g, k, partition.Options{Seed: cfg.Seed})
	}
	if err != nil {
		return nil, err
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		return nil, err
	}
	return &workload{ds: ds, g: g, part: p, rel: rel, topo: topo, k: k, scale: cfg.Scale, layers: cfg.Layers}, nil
}

// layerDims returns the embedding width entering each layer: features first,
// then hidden widths.
func (w *workload) layerDims() []int {
	dims := make([]int, w.layers)
	dims[0] = w.ds.FeatureDim
	for l := 1; l < w.layers; l++ {
		dims[l] = w.ds.HiddenDim
	}
	return dims
}

// haloAllowance is the assumed ratio of (local + remote halo) to local
// vertices at full size, used for OOM extrapolation.
const haloAllowance = 1.25

// scheme identifies one of the §7 communication schemes.
type scheme string

const (
	schemeDGCL        scheme = "DGCL"
	schemeP2P         scheme = "Peer-to-peer"
	schemeSwap        scheme = "Swap"
	schemeReplication scheme = "Replication"
)

// epochResult is one scheme's simulated epoch.
type epochResult struct {
	CommTime    float64 // seconds at scale
	ComputeTime float64
	OOM         bool
}

func (e epochResult) total() float64 { return e.CommTime + e.ComputeTime }

// commTimePerEpoch simulates one epoch's communication for a staged plan: a
// forward allgather per layer at that layer's input width, and a backward
// gradient exchange per hidden layer (the layer-0 feature gradient is
// discarded, so a K-layer epoch runs K forward and K-1 backward exchanges).
func commTimePerEpoch(w *workload, plan *core.Plan, net *simnet.Network) (float64, error) {
	var total float64
	for li, dim := range w.layerDims() {
		p := *plan
		p.BytesPerVertex = int64(dim) * 4
		fwd, err := net.RunPlan(&p)
		if err != nil {
			return 0, err
		}
		total += fwd.Time
		if li == 0 {
			continue
		}
		bwd, err := net.RunBackward(&p, true)
		if err != nil {
			return 0, err
		}
		total += bwd.Time
	}
	return total, nil
}

// swapTimePerEpoch simulates swap's per-epoch exchange with the same
// forward/backward layer accounting.
func swapTimePerEpoch(w *workload, net *simnet.Network) (float64, error) {
	var total float64
	for li, dim := range w.layerDims() {
		sp, err := baselines.PlanSwap(w.rel, w.topo, int64(dim)*4)
		if err != nil {
			return 0, err
		}
		fwd, err := net.RunSwap(sp)
		if err != nil {
			return 0, err
		}
		total += fwd.Time
		if li > 0 {
			total += fwd.Time // backward dumps/loads gradients symmetrically
		}
	}
	return total, nil
}

// maxLocalLoad returns the largest per-GPU vertex and edge counts.
func (w *workload) maxLocalLoad() (vertices, edges int64) {
	counts := make([]int64, w.k)
	edgeCounts := make([]int64, w.k)
	for v, d := range w.part.Assign {
		counts[d]++
		edgeCounts[d] += int64(w.g.Degree(int32(v)))
	}
	for d := 0; d < w.k; d++ {
		if counts[d] > vertices {
			vertices = counts[d]
		}
		if edgeCounts[d] > edges {
			edges = edgeCounts[d]
		}
	}
	return vertices, edges
}

// newModel builds the model for a workload's dataset dims.
func (w *workload) newModel(kind gnn.ModelKind) *gnn.Model {
	return gnn.NewModel(kind, w.ds.FeatureDim, w.ds.HiddenDim, w.layers, 1)
}

// gpuFor returns the device type for the workload's topology.
func gpuFor(topo *topology.Topology) device.GPU {
	if topo.Name == "pcie8" {
		return device.GTX1080Ti()
	}
	return device.V100()
}

// checkOOMFullSize extrapolates a per-GPU resident set measured at scale to
// the full dataset size and checks device memory.
func checkOOMFullSize(w *workload, model *gnn.Model, residentFrac, edgeFrac float64) bool {
	gpu := gpuFor(w.topo)
	resident := int64(residentFrac * float64(w.ds.Vertices))
	edges := int64(edgeFrac * float64(w.ds.Edges))
	return gpu.CheckFits(model, resident, edges, w.ds.FeatureDim) != nil
}

// runScheme simulates one epoch under the given scheme.
func runScheme(cfg Config, w *workload, kind gnn.ModelKind, s scheme) (epochResult, error) {
	cfg = cfg.withDefaults()
	model := w.newModel(kind)
	gpu := gpuFor(w.topo)
	net, err := simnet.New(w.topo, simConfig(cfg))
	if err != nil {
		return epochResult{}, err
	}
	maxV, maxE := w.maxLocalLoad()
	n := int64(w.g.NumVertices())

	switch s {
	case schemeDGCL, schemeP2P:
		var plan *core.Plan
		if s == schemeDGCL {
			plan, _, err = core.PlanSPST(w.rel, w.topo, int64(w.ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed})
			if err != nil {
				return epochResult{}, err
			}
		} else {
			plan = baselines.PlanP2P(w.rel, int64(w.ds.FeatureDim)*4)
		}
		commT, err := commTimePerEpoch(w, plan, net)
		if err != nil {
			return epochResult{}, err
		}
		// Resident = local partition plus a halo allowance. The halo
		// *fraction* measured on a downscaled graph overestimates full size
		// (degrees stay constant while the vertex pool shrinks), so use a
		// fixed 1.25x allowance that matches full-size METIS halos.
		oom := checkOOMFullSize(w, model, haloAllowance*float64(maxV)/float64(n), float64(maxE)/float64(w.g.NumEdges()))
		return epochResult{CommTime: commT, ComputeTime: gpu.EpochComputeTime(model, maxV, maxE), OOM: oom}, nil

	case schemeSwap:
		commT, err := swapTimePerEpoch(w, net)
		if err != nil {
			return epochResult{}, err
		}
		oom := checkOOMFullSize(w, model, haloAllowance*float64(maxV)/float64(n), float64(maxE)/float64(w.g.NumEdges()))
		return epochResult{CommTime: commT, ComputeTime: gpu.EpochComputeTime(model, maxV, maxE), OOM: oom}, nil

	case schemeReplication:
		// Exact induced edge count for the most loaded GPU.
		members := w.part.Members()
		var maxStored, maxEdges int64
		for d := 0; d < w.k; d++ {
			stored := w.g.KHopNeighborhood(members[d], cfg.Layers, true)
			in := make(map[int32]bool, len(stored))
			for _, v := range stored {
				in[v] = true
			}
			var e int64
			for _, v := range stored {
				for _, u := range w.g.Neighbors(v) {
					if in[u] {
						e++
					}
				}
			}
			if int64(len(stored)) > maxStored {
				maxStored = int64(len(stored))
			}
			if e > maxEdges {
				maxEdges = e
			}
		}
		oom := checkOOMFullSize(w, model, float64(maxStored)/float64(n), float64(maxEdges)/float64(w.g.NumEdges()))
		return epochResult{ComputeTime: gpu.EpochComputeTime(model, maxStored, maxEdges), OOM: oom}, nil
	}
	return epochResult{}, fmt.Errorf("experiments: unknown scheme %q", s)
}

// Markdown renders the report as a GitHub-flavored markdown table.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s: %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
