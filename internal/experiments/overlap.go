package experiments

import (
	"fmt"

	"dgcl/internal/core"
	"dgcl/internal/gnn"
	"dgcl/internal/graph"
	"dgcl/internal/simnet"
)

// Overlap studies transfer-compute pipelining (the chunked schedule NeuGraph
// pioneered and a natural DGCL extension): if each layer's graphAllgather is
// chunked and interleaved with aggregation compute, the layer costs
// max(comm, compute) instead of comm + compute. The experiment reports the
// per-epoch time of DGCL with the paper's sequential schedule versus the
// pipelined bound, per dataset and model, at 8 GPUs.
func Overlap(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "overlap",
		Title:  "Sequential vs pipelined transfer-compute (ms, full-size), DGCL at 8 GPUs",
		Header: []string{"Dataset", "Model", "Sequential", "Pipelined", "Saving"}}
	for _, ds := range graph.AllDatasets {
		w, err := buildWorkload(cfg, ds, 8)
		if err != nil {
			return nil, err
		}
		plan, _, err := core.PlanSPST(w.rel, w.topo, int64(ds.FeatureDim)*4, core.SPSTOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		net, err := simnet.New(w.topo, simConfig(cfg))
		if err != nil {
			return nil, err
		}
		maxV, maxE := w.maxLocalLoad()
		gpu := gpuFor(w.topo)
		for _, kind := range gnn.AllModels {
			model := w.newModel(kind)
			// Per-layer comm and compute; compute split evenly per layer
			// (dims are constant after layer 1, close enough for the bound).
			perLayerCompute := gpu.EpochComputeTime(model, maxV, maxE) / float64(cfg.Layers)
			var sequential, pipelined float64
			for li, dim := range w.layerDims() {
				p := *plan
				p.BytesPerVertex = int64(dim) * 4
				fwd, err := net.RunPlan(&p)
				if err != nil {
					return nil, err
				}
				comm := fwd.Time
				if li > 0 {
					bwd, err := net.RunBackward(&p, true)
					if err != nil {
						return nil, err
					}
					comm += bwd.Time
				}
				sequential += comm + perLayerCompute
				pipelined += maxf(comm, perLayerCompute)
			}
			saving := 0.0
			if sequential > 0 {
				saving = (1 - pipelined/sequential) * 100
			}
			r.Rows = append(r.Rows, []string{ds.Name, string(kind),
				fullMS(sequential, cfg.Scale), fullMS(pipelined, cfg.Scale),
				fmt.Sprintf("%.0f%%", saving)})
		}
	}
	r.Notes = append(r.Notes,
		"pipelined = per-layer max(comm, compute): the upper bound of NeuGraph-style chunked overlap applied to DGCL's planned exchange",
		"savings approach 50% when comm and compute are balanced; they vanish when either dominates")
	return r, nil
}
