package tensor

// Designated deterministic-reduce helpers.
//
// Distributed training is checked against single-device training bit-for-bit
// (the W1B1 equivalence battery), and the cost model's stage sums feed
// golden-plan assertions. Both require float reductions to happen in one
// fixed order everywhere. These helpers are that order: plain left-to-right
// accumulation, no Kahan compensation, no pairwise splitting, no
// vectorization-dependent reassociation. The floatorder analyzer
// (internal/analysis/floatorder) flags any scalar float accumulation loop
// outside a //dgclvet:detreduce-marked function, which funnels all reductions
// here.

// Dot returns the inner product of a and b (length of a; b must be at least
// as long), accumulating left to right in float32.
//
//dgclvet:detreduce canonical fixed-order float32 inner product.
func Dot(a, b []float32) float32 {
	b = b[:len(a)] // bounds hint: elides the per-element check on b[i]
	var s float32
	// 4-way unroll through a SINGLE accumulator: the adds form the exact
	// left-to-right dependency chain of the plain loop (no partial sums, no
	// reassociation), so results are unchanged; only loop overhead goes away.
	for len(a) >= 4 && len(b) >= 4 {
		s += a[0] * b[0]
		s += a[1] * b[1]
		s += a[2] * b[2]
		s += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	if len(a) >= 2 && len(b) >= 2 {
		s += a[0] * b[0]
		s += a[1] * b[1]
		a, b = a[2:], b[2:]
	}
	if len(a) >= 1 && len(b) >= 1 {
		s += a[0] * b[0]
	}
	return s
}

// Sum returns the left-to-right sum of xs in float32.
//
//dgclvet:detreduce canonical fixed-order float32 sum.
func Sum(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s
}

// Sum64 returns the left-to-right sum of xs in float64.
//
//dgclvet:detreduce canonical fixed-order float64 sum.
func Sum64(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// SumSquares returns the left-to-right sum of squares of xs, widened to
// float64 per element before squaring (matching the historical Frobenius and
// MSE loss accumulation exactly).
//
//dgclvet:detreduce canonical fixed-order float64 sum of float32 squares.
func SumSquares(xs []float32) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x) * float64(x)
	}
	return s
}
