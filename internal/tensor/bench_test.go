package tensor

import (
	"fmt"
	"testing"
)

// Kernel micro-benchmarks. The sparse variants fill `a` with ~50% zeros (a
// ReLU-like activation pattern) to quantify the former data-dependent
// zero-skip in MatMul/MatMulATB; the dense variants are the planner-priced
// common case (aggregated embeddings are dense). DESIGN.md §11 records the
// before/after numbers for the zero-skip removal.

func fillSparse(m *Matrix, seed int64) {
	m.FillRandom(seed)
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

func benchShapes() []struct{ m, k, n int } {
	return []struct{ m, k, n int }{
		{400, 64, 32},
		{1000, 128, 64},
	}
}

func BenchmarkMatMulDense(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := New(s.m, s.k).FillRandom(1)
			w := New(s.k, s.n).FillRandom(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(a, w)
			}
		})
	}
}

func BenchmarkMatMulSparse(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := New(s.m, s.k)
			fillSparse(a, 1)
			w := New(s.k, s.n).FillRandom(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(a, w)
			}
		})
	}
}

func BenchmarkMatMulATBDense(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := New(s.m, s.k).FillRandom(1)
			g := New(s.m, s.n).FillRandom(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulATB(a, g)
			}
		})
	}
}

func BenchmarkMatMulATBSparse(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := New(s.m, s.k)
			fillSparse(a, 1)
			g := New(s.m, s.n).FillRandom(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulATB(a, g)
			}
		})
	}
}

func BenchmarkMatMulABT(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := New(s.m, s.n).FillRandom(1)
			w := New(s.k, s.n).FillRandom(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulABT(a, w)
			}
		})
	}
}
