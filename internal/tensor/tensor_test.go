package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromData(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromData(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("matmul[%d]=%v want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTransposedMatMulsAgreeWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 4)
	b := New(5, 3)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32()
	}
	// aᵀ b by explicit transpose.
	at := New(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulATB(a, b)
	if MaxAbsDiff(want, got) > 1e-5 {
		t.Fatalf("ATB diverges: %v", MaxAbsDiff(want, got))
	}
	// a bᵀ: a is 5x4, use c 6x4 for b.
	c := New(6, 4)
	for i := range c.Data {
		c.Data[i] = rng.Float32()
	}
	ct := New(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	want = MatMul(a, ct)
	got = MatMulABT(a, c)
	if MaxAbsDiff(want, got) > 1e-5 {
		t.Fatalf("ABT diverges: %v", MaxAbsDiff(want, got))
	}
}

func TestReLUAndGrad(t *testing.T) {
	pre := FromData(1, 4, []float32{-1, 0, 2, -3})
	out := ReLU(pre)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2 || out.Data[3] != 0 {
		t.Fatalf("relu=%v", out.Data)
	}
	grad := FromData(1, 4, []float32{10, 20, 30, 40})
	g := ReLUGrad(pre, grad)
	if g.Data[0] != 0 || g.Data[2] != 30 || g.Data[3] != 0 {
		t.Fatalf("relugrad=%v", g.Data)
	}
}

func TestBias(t *testing.T) {
	a := FromData(2, 2, []float32{1, 2, 3, 4})
	bias := FromData(1, 2, []float32{10, 20})
	AddBiasInPlace(a, bias)
	if a.At(0, 0) != 11 || a.At(1, 1) != 24 {
		t.Fatalf("bias add: %v", a.Data)
	}
	g := BiasGrad(a)
	if g.Data[0] != 11+13 || g.Data[1] != 22+24 {
		t.Fatalf("bias grad: %v", g.Data)
	}
}

func TestGatherScatter(t *testing.T) {
	a := FromData(3, 2, []float32{1, 2, 3, 4, 5, 6})
	g := GatherRows(a, []int32{2, 0})
	if g.At(0, 0) != 5 || g.At(1, 1) != 2 {
		t.Fatalf("gather: %v", g.Data)
	}
	dst := New(3, 2)
	ScatterAddRows(dst, g, []int32{1, 1})
	if dst.At(1, 0) != 6 || dst.At(1, 1) != 8 || dst.At(0, 0) != 0 {
		t.Fatalf("scatter: %v", dst.Data)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromData(1, 2, []float32{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("clone aliases data")
	}
}

func TestXavierDeterministicAndBounded(t *testing.T) {
	a := New(64, 32).Xavier(7)
	b := New(64, 32).Xavier(7)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("xavier not deterministic")
	}
	limit := math.Sqrt(6.0 / 96.0)
	for _, v := range a.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("xavier value %v exceeds limit %v", v, limit)
		}
	}
}

func TestScaleZeroFrobenius(t *testing.T) {
	a := FromData(1, 3, []float32{3, 4, 0})
	if f := Frobenius(a); math.Abs(f-5) > 1e-9 {
		t.Fatalf("frobenius=%v", f)
	}
	ScaleInPlace(a, 2)
	if a.Data[1] != 8 {
		t.Fatal("scale failed")
	}
	a.Zero()
	if Frobenius(a) != 0 {
		t.Fatal("zero failed")
	}
}

// Property: (A B) C == A (B C) within float tolerance.
func TestPropertyMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, k, l := 2+rng.Intn(5), 2+rng.Intn(5), 2+rng.Intn(5), 2+rng.Intn(5)
		a, b, c := New(n, m), New(m, k), New(k, l)
		for i := range a.Data {
			a.Data[i] = rng.Float32()
		}
		for i := range b.Data {
			b.Data[i] = rng.Float32()
		}
		for i := range c.Data {
			c.Data[i] = rng.Float32()
		}
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(left, right) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: gather then scatter-add with the same index list accumulates
// exactly the gathered rows.
func TestPropertyGatherScatterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 3+rng.Intn(10), 1+rng.Intn(6)
		a := New(n, c)
		for i := range a.Data {
			a.Data[i] = rng.Float32()
		}
		idx := make([]int32, 1+rng.Intn(2*n))
		for i := range idx {
			idx[i] = int32(rng.Intn(n))
		}
		g := GatherRows(a, idx)
		dst := New(n, c)
		ScatterAddRows(dst, g, idx)
		// dst row r should equal count(r in idx) * a row r.
		count := make([]float32, n)
		for _, r := range idx {
			count[r]++
		}
		for r := 0; r < n; r++ {
			for j := 0; j < c; j++ {
				want := count[r] * a.At(r, j)
				if math.Abs(float64(dst.At(r, j)-want)) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// serialMatMul / serialATB / serialABT are naive reference kernels with the
// canonical serial accumulation order (i outermost, ascending k, ascending
// j). The parallel kernels must match them bit for bit at every worker
// count: each output row is written by exactly one worker using exactly this
// order.
func serialMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func serialATB(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[k*out.Cols+j] += av * b.At(i, j)
			}
		}
	}
	return out
}

func serialABT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			out.Set(i, j, Dot(a.Row(i), b.Row(j)))
		}
	}
	return out
}

// bitsEqual compares two matrices bit for bit (stricter than MaxAbsDiff == 0,
// which treats +0 and -0 as equal).
func bitsEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestParallelKernelsBitIdentical runs all three matmul kernels across odd
// shapes (including rows < workers, single rows/cols, and sparse inputs
// exercising the removed zero-skip) at worker counts {1, 2, 3, 4, 7},
// asserting bit-identical outputs against the serial references.
func TestParallelKernelsBitIdentical(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {7, 3, 1}, {2, 9, 4}, {13, 6, 5}, {64, 17, 9}, {5, 1, 3},
	}
	for _, sparse := range []bool{false, true} {
		for si, s := range shapes {
			a := New(s.m, s.k).FillRandom(int64(si) + 1)
			bm := New(s.k, s.n).FillRandom(int64(si) + 100)
			atb := New(s.m, s.n).FillRandom(int64(si) + 200) // b for ATB (same rows as a)
			abt := New(s.n, s.k).FillRandom(int64(si) + 300) // b for ABT (same cols as a)
			if sparse {
				for i := range a.Data {
					if a.Data[i] < 0 {
						a.Data[i] = 0
					}
				}
			}
			wantMM := serialMatMul(a, bm)
			wantATB := serialATB(a, atb)
			wantABT := serialABT(a, abt)
			for _, w := range []int{1, 2, 3, 4, 7} {
				SetParallelism(w)
				if got := MatMul(a, bm); !bitsEqual(got, wantMM) {
					t.Fatalf("MatMul %dx%dx%d diverges at W=%d (sparse=%v)", s.m, s.k, s.n, w, sparse)
				}
				if got := MatMulATB(a, atb); !bitsEqual(got, wantATB) {
					t.Fatalf("MatMulATB %dx%dx%d diverges at W=%d (sparse=%v)", s.m, s.k, s.n, w, sparse)
				}
				if got := MatMulABT(a, abt); !bitsEqual(got, wantABT) {
					t.Fatalf("MatMulABT %dx%dx%d diverges at W=%d (sparse=%v)", s.m, s.k, s.n, w, sparse)
				}
			}
			SetParallelism(1)
		}
	}
}

// TestSetParallelism pins the knob's semantics: returns the previous value,
// clamps to >= 1, and ParallelRows covers [0, rows) in disjoint chunks.
func TestSetParallelism(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	if prev := SetParallelism(4); prev != 1 {
		t.Fatalf("previous parallelism = %d, want 1", prev)
	}
	if got := Parallelism(); got != 4 {
		t.Fatalf("parallelism = %d, want 4", got)
	}
	if prev := SetParallelism(0); prev != 4 {
		t.Fatalf("previous parallelism = %d, want 4", prev)
	}
	if got := Parallelism(); got != 1 {
		t.Fatalf("parallelism after clamp = %d, want 1", got)
	}
	SetParallelism(3)
	for _, rows := range []int{0, 1, 2, 3, 7, 10} {
		covered := make([]int32, rows)
		var mu sync.Mutex
		ParallelRows(rows, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("rows=%d: row %d covered %d times", rows, i, c)
			}
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	a := New(128, 128).Xavier(1)
	c := New(128, 128).Xavier(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}
