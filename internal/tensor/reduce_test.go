package tensor

import (
	"math"
	"testing"
)

// The reduce helpers are the designated deterministic reductions: their
// left-to-right order is part of the contract (the W1B1 battery and golden
// plans assume it), so these tests pin it bit for bit against reference
// loops — any reassociation (Kahan, pairwise, SIMD) is a test failure, not
// an optimization.

func refF32(xs []float32) float32 {
	var s float32 //dgclvet:ignore floatorder reference loop pinning the helper's order
	for _, x := range xs {
		s += x
	}
	return s
}

func testVec32(n int, seed int64) []float32 {
	xs := make([]float32, n)
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := range xs {
		state = state*2862933555777941757 + 3037000493
		xs[i] = float32(int32(state>>33))/(1<<20) + 1e-7*float32(i)
	}
	return xs
}

func TestSumMatchesLeftToRight(t *testing.T) {
	xs := testVec32(1001, 5)
	if got, want := Sum(xs), refF32(xs); got != want {
		t.Fatalf("Sum = %x, left-to-right reference = %x", got, want)
	}
}

func TestDotMatchesLeftToRight(t *testing.T) {
	a, b := testVec32(733, 9), testVec32(733, 10)
	var want float32 //dgclvet:ignore floatorder reference loop pinning the helper's order
	for i := range a {
		want += a[i] * b[i]
	}
	if got := Dot(a, b); got != want {
		t.Fatalf("Dot = %x, left-to-right reference = %x", got, want)
	}
}

func TestSum64MatchesLeftToRight(t *testing.T) {
	xs64 := make([]float64, 517)
	for i := range xs64 {
		xs64[i] = 1.0/float64(i+1) - 0.3*float64(i%7)
	}
	var want float64 //dgclvet:ignore floatorder reference loop pinning the helper's order
	for _, x := range xs64 {
		want += x
	}
	if got := Sum64(xs64); got != want {
		t.Fatalf("Sum64 = %x, left-to-right reference = %x", got, want)
	}
}

func TestSumSquaresMatchesLeftToRight(t *testing.T) {
	xs := testVec32(899, 13)
	var want float64 //dgclvet:ignore floatorder reference loop pinning the helper's order
	for _, x := range xs {
		want += float64(x) * float64(x)
	}
	if got := SumSquares(xs); got != want {
		t.Fatalf("SumSquares = %x, left-to-right reference = %x", got, want)
	}
}

// Order must be observable: if reversing the input never changed any sum,
// the order-pinning above would be vacuous.
func TestSumOrderIsObservable(t *testing.T) {
	xs := []float32{1e8, 1, -1e8, 1, 1e-3, -1}
	rev := make([]float32, len(xs))
	for i, x := range xs {
		rev[len(xs)-1-i] = x
	}
	if Sum(xs) == Sum(rev) {
		t.Skip("chosen vector not order-sensitive on this platform")
	}
	// Reaching here proves float order changes results — which is exactly
	// why the helpers pin it.
}

func TestSumEmptyAndNaN(t *testing.T) {
	if Sum(nil) != 0 || Sum64(nil) != 0 || SumSquares(nil) != 0 || Dot(nil, nil) != 0 {
		t.Fatal("empty reductions must be zero")
	}
	if !math.IsNaN(float64(Sum([]float32{float32(math.NaN())}))) {
		t.Fatal("NaN must propagate through Sum")
	}
}
