// Package tensor provides the dense float32 linear algebra used by the GNN
// substrate: row-major matrices with the operations GNN layers need
// (matmul, transposed matmuls for backprop, bias, ReLU, row gather/scatter)
// plus deterministic Xavier initialization. It is deliberately simple —
// correctness and determinism matter more here than BLAS-grade speed, since
// compute *time* is modeled by package device.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromData wraps existing data (not copied). len(data) must equal rows*cols.
func FromData(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Xavier fills the matrix with Glorot-uniform values using the given seed.
func (m *Matrix) Xavier(seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
	return m
}

// FillRandom fills with uniform [-1, 1) values (for feature generation).
func (m *Matrix) FillRandom(seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// MatMul returns a × b. Output rows are computed independently (see
// parallel.go), so the kernel parallelizes bit-identically across
// SetParallelism workers. The historical data-dependent zero-skip on a's
// elements is gone: it made kernel cost a function of activation sparsity in
// a way the device cost model never priced, for a win that only materialized
// on artificially sparse inputs (aggregated embeddings are dense in
// practice; see DESIGN.md §11 for the before/after numbers).
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	ParallelRows(a.Rows, func(lo, hi int) { matMulRows(a, b, out, lo, hi) })
	return out
}

// MatMulATB returns aᵀ × b (used for weight gradients). Workers partition
// the OUTPUT rows k (columns of a); the row loop over a stays outermost per
// worker so each output row accumulates in the exact serial order.
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulATB %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	ParallelRows(a.Cols, func(lo, hi int) { matMulATBRows(a, b, out, lo, hi) })
	return out
}

// MatMulABT returns a × bᵀ (used for input gradients).
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABT %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	ParallelRows(a.Rows, func(lo, hi int) { matMulABTRows(a, b, out, lo, hi) })
	return out
}

// AddInPlace adds b into a (same shape).
func AddInPlace(a, b *Matrix) {
	checkSameShape("add", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func ScaleInPlace(a *Matrix, s float32) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AddBiasInPlace adds a 1×cols bias row to every row of a.
func AddBiasInPlace(a *Matrix, bias *Matrix) {
	if bias.Rows != 1 || bias.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: bias %dx%d for %dx%d", bias.Rows, bias.Cols, a.Rows, a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, bv := range bias.Data {
			row[j] += bv
		}
	}
}

// BiasGrad sums the rows of grad into a 1×cols matrix.
func BiasGrad(grad *Matrix) *Matrix {
	out := New(1, grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		AddTo(out.Data, grad.Row(i))
	}
	return out
}

// ReLU returns max(x, 0) elementwise.
func ReLU(a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ReLUGrad masks grad by the activation pattern of pre (the pre-activation
// input): grad flows only where pre > 0.
func ReLUGrad(pre, grad *Matrix) *Matrix {
	checkSameShape("relugrad", pre, grad)
	out := New(grad.Rows, grad.Cols)
	for i, v := range pre.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// GatherRows returns the matrix whose i-th row is a's rows[i]-th row.
func GatherRows(a *Matrix, rows []int32) *Matrix {
	out := New(len(rows), a.Cols)
	for i, r := range rows {
		copy(out.Row(i), a.Row(int(r)))
	}
	return out
}

// ScatterAddRows adds src's i-th row into dst's rows[i]-th row.
func ScatterAddRows(dst, src *Matrix, rows []int32) {
	if src.Rows != len(rows) || src.Cols != dst.Cols {
		panic(fmt.Sprintf("tensor: scatter %dx%d into %dx%d via %d rows", src.Rows, src.Cols, dst.Rows, dst.Cols, len(rows)))
	}
	for i, r := range rows {
		drow := dst.Row(int(r))
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// Frobenius returns the Frobenius norm.
func Frobenius(a *Matrix) float64 {
	return math.Sqrt(SumSquares(a.Data))
}

// MaxAbsDiff returns the maximum absolute elementwise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSameShape("maxabsdiff", a, b)
	var m float64
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i]) - float64(b.Data[i])); d > m {
			m = d
		}
	}
	return m
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
