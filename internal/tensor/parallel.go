package tensor

import (
	"sync"
	"sync/atomic"
)

// Deterministic parallel kernels. The three matmul variants partition their
// OUTPUT rows into contiguous per-worker ranges, so every output row is
// written by exactly one worker and is computed with exactly the serial
// loop's accumulation order. That makes the result bit-identical to the
// serial kernel for any worker count — the same one-writer argument the
// non-atomic backward allgather (§6.2) and the wave-commit planner rely on.
// Parallelism is a process-wide knob (dgcl.Options.KernelWorkers / the
// dgcltrain -kernel-workers flag) rather than a per-call argument because
// the GNN layers call these kernels from K concurrent client goroutines; the
// knob only changes speed, never results.

// kernelWorkers is the worker count used by ParallelRows (1 = serial).
var kernelWorkers atomic.Int32

func init() { kernelWorkers.Store(1) }

// SetParallelism sets the number of workers the row-partitioned kernels use
// and returns the previous value. Values below 1 are treated as 1. Results
// are bit-identical for every worker count; only wall-clock time changes.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(kernelWorkers.Swap(int32(n)))
}

// Parallelism returns the current kernel worker count.
func Parallelism() int { return int(kernelWorkers.Load()) }

// ParallelRows splits [0, rows) into at most Parallelism() contiguous
// chunks and runs fn(lo, hi) for each, concurrently when more than one
// worker is configured. fn must only write state owned by rows [lo, hi) —
// the one-writer-per-row discipline that keeps parallel execution
// bit-identical to serial. Exported so the GNN aggregator can reuse the
// same partitioning for its per-output-row forward loop.
func ParallelRows(rows int, fn func(lo, hi int)) {
	w := int(kernelWorkers.Load())
	if w > rows {
		w = rows
	}
	if w <= 1 {
		if rows > 0 {
			fn(0, rows)
		}
		return
	}
	chunk, rem := rows/w, rows%w
	var wg sync.WaitGroup
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// Axpy adds a*x into y elementwise over len(y) entries. The reslice of x is
// a bounds hint: it pins len(x) == len(y) so the loop body needs no
// per-element bounds checks. Each y[j] is updated by exactly one
// independent += a*x[j], so the 4-way unroll changes neither values nor
// accumulation order versus the historical inline loops — there is no
// cross-element dependency to reassociate. Exported (with AddTo) so the GNN
// aggregator's per-edge row updates go through the same tuned inner loop.
func Axpy(a float32, x, y []float32) {
	x = x[:len(y)]
	// Slice-advance unroll: the loop conditions prove every index in the
	// body, so the compiler emits no per-element bounds checks.
	for len(x) >= 4 && len(y) >= 4 {
		y[0] += a * x[0]
		y[1] += a * x[1]
		y[2] += a * x[2]
		y[3] += a * x[3]
		x, y = x[4:], y[4:]
	}
	if len(x) >= 2 && len(y) >= 2 {
		y[0] += a * x[0]
		y[1] += a * x[1]
		x, y = x[2:], y[2:]
	}
	if len(x) >= 1 && len(y) >= 1 {
		y[0] += a * x[0]
	}
}

// AddTo adds x into y elementwise over len(y) entries — Axpy with a == 1,
// minus the multiply (1*x == x bitwise for every float32 x, so callers may
// use either form interchangeably).
func AddTo(y, x []float32) {
	x = x[:len(y)]
	for len(x) >= 4 && len(y) >= 4 {
		y[0] += x[0]
		y[1] += x[1]
		y[2] += x[2]
		y[3] += x[3]
		x, y = x[4:], y[4:]
	}
	if len(x) >= 2 && len(y) >= 2 {
		y[0] += x[0]
		y[1] += x[1]
		x, y = x[2:], y[2:]
	}
	if len(x) >= 1 && len(y) >= 1 {
		y[0] += x[0]
	}
}

// axpy4 adds a0*x0 + a1*x1 + a2*x2 + a3*x3 into y, element by element, with
// the four contributions applied in order (v is rounded to float32 after
// each add, exactly as four successive Axpy calls would round). Blocking
// four terms loads and stores y[j] once instead of four times.
func axpy4(a0, a1, a2, a3 float32, x0, x1, x2, x3, y []float32) {
	n := len(y)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for j := range y {
		v := y[j]
		v += a0 * x0[j]
		v += a1 * x1[j]
		v += a2 * x2[j]
		v += a3 * x3[j]
		y[j] = v
	}
}

// dot4 computes four fixed-order inner products of a against x0..x3 in one
// pass. Each accumulator is its own left-to-right chain — identical to four
// Dot calls — but the four independent chains pipeline where a single
// chain's add latency would serialize.
//
//dgclvet:detreduce four independent canonical fixed-order float32 inner products.
func dot4(a, x0, x1, x2, x3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for j := range a {
		v := a[j]
		s0 += v * x0[j]
		s1 += v * x1[j]
		s2 += v * x2[j]
		s3 += v * x3[j]
	}
	return s0, s1, s2, s3
}

// matMulRows computes out[lo:hi] of out = a × b with the serial i-k-j loop,
// k blocked by four: every output element still receives its k-terms one at
// a time in ascending k (see axpy4), so results are bit-identical to the
// unblocked kernel.
func matMulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		k := 0
		for ; k+3 < len(arow); k += 4 {
			axpy4(arow[k], arow[k+1], arow[k+2], arow[k+3],
				b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3), orow)
		}
		for ; k < len(arow); k++ {
			Axpy(arow[k], b.Row(k), orow)
		}
	}
}

// matMulATBRows computes output rows [lo, hi) of out = aᵀ × b. The k loop is
// outermost so each output row is resolved once and stays hot, but every row
// still accumulates its per-i contributions in ascending i — the exact
// serial order, since iteration order within one output row is all that
// bit-identity depends on. Workers split the k range, never the i range.
func matMulATBRows(a, b, out *Matrix, lo, hi int) {
	for k := lo; k < hi; k++ {
		orow := out.Row(k)
		i := 0
		for ; i+3 < a.Rows; i += 4 {
			axpy4(a.Data[i*a.Cols+k], a.Data[(i+1)*a.Cols+k], a.Data[(i+2)*a.Cols+k], a.Data[(i+3)*a.Cols+k],
				b.Row(i), b.Row(i+1), b.Row(i+2), b.Row(i+3), orow)
		}
		for ; i < a.Rows; i++ {
			Axpy(a.Data[i*a.Cols+k], b.Row(i), orow)
		}
	}
}

// matMulABTRows computes out[lo:hi] of out = a × bᵀ; each output element is
// one fixed-order Dot, computed four at a time (dot4) where the row width
// allows.
func matMulABTRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		j := 0
		for ; j+3 < len(orow); j += 4 {
			orow[j], orow[j+1], orow[j+2], orow[j+3] =
				dot4(arow, b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3))
		}
		for ; j < len(orow); j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
}
