package gnn

import (
	"math"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

func TestGATAttentionSumsToOne(t *testing.T) {
	g := graph.Ring(6)
	l := NewGATLayer(3, 4, 1)
	agg := NewAggregator(g, 6, false)
	l.Forward(agg, tensor.New(6, 3).FillRandom(2))
	// Per vertex, attention over its 2 ring neighbors sums to 1.
	ei := 0
	for u := 0; u < 6; u++ {
		deg := g.Degree(int32(u))
		var sum float32
		for i := 0; i < deg; i++ {
			a := l.alpha[ei+i]
			if a < 0 || a > 1 {
				t.Fatalf("alpha out of range: %v", a)
			}
			sum += a
		}
		ei += deg
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Fatalf("vertex %d attention sums to %v", u, sum)
		}
	}
}

func TestGATIsolatedVertex(t *testing.T) {
	g := graph.MustFromEdges(2, nil, false)
	l := NewGATLayer(2, 3, 1)
	agg := NewAggregator(g, 2, false)
	out := l.Forward(agg, tensor.New(2, 2).FillRandom(1))
	// No neighbors: output is ReLU(bias) = 0 with zero bias.
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("isolated output %v", out.Data)
		}
	}
	// Backward must not panic and produces zero input grads.
	grad := l.Backward(agg, tensor.New(2, 3).FillRandom(2))
	if tensor.Frobenius(grad) != 0 {
		t.Fatal("isolated input grads should be zero")
	}
}

func TestGATGradCheck(t *testing.T) {
	gradCheckGAT(t, graph.Ring(6))
}

func TestGATGradCheckDenser(t *testing.T) {
	gradCheckGAT(t, graph.Grid2D(3, 3))
}

func gradCheckGAT(t *testing.T, g *graph.Graph) {
	t.Helper()
	layer := NewGATLayer(3, 4, 42)
	// Positive bias keeps the final ReLU away from its kink; attention's
	// softmax is smooth, and LeakyReLU kinks are handled by slope-aware
	// gradients, but finite differences still prefer margins, so scale
	// attention vectors down.
	pushAwayFromKinks(layer)
	agg := NewAggregator(g, g.NumVertices(), false)
	features := tensor.New(g.NumVertices(), 3).FillRandom(1)
	target := tensor.New(g.NumVertices(), 4).FillRandom(2)

	lossOf := func() float64 {
		out := layer.Forward(agg, features)
		loss, _ := MSELossGrad(out, target)
		return loss
	}
	layer.ZeroGrads()
	out := layer.Forward(agg, features)
	_, grad := MSELossGrad(out, target)
	layer.Backward(agg, grad)

	const eps = 1e-2
	for pi, p := range layer.Params() {
		gAnalytic := layer.Grads()[pi]
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			orig := p.Data[idx]
			p.Data[idx] = orig + eps
			lp := lossOf()
			p.Data[idx] = orig - eps
			lm := lossOf()
			p.Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(gAnalytic.Data[idx])
			if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
				t.Fatalf("param %d idx %d: numeric %v analytic %v", pi, idx, numeric, analytic)
			}
		}
	}
}

func TestGATInputGradCheck(t *testing.T) {
	g := graph.Ring(5)
	layer := NewGATLayer(2, 3, 7)
	pushAwayFromKinks(layer)
	agg := NewAggregator(g, 5, false)
	features := tensor.New(5, 2).FillRandom(3)
	target := tensor.New(5, 3).FillRandom(4)

	layer.ZeroGrads()
	out := layer.Forward(agg, features)
	_, grad := MSELossGrad(out, target)
	gradIn := layer.Backward(agg, grad)

	const eps = 5e-3
	for _, idx := range []int{0, 3, 9} {
		orig := features.Data[idx]
		features.Data[idx] = orig + eps
		lp, _ := MSELossGrad(layer.Forward(agg, features), target)
		features.Data[idx] = orig - eps
		lm, _ := MSELossGrad(layer.Forward(agg, features), target)
		features.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(gradIn.Data[idx])
		if math.Abs(numeric-analytic) > 3e-2*(1+math.Abs(numeric)) {
			t.Fatalf("input grad idx %d: numeric %v analytic %v", idx, numeric, analytic)
		}
	}
}

func TestGATTrainingReducesLoss(t *testing.T) {
	g := graph.CommunityGraph(80, 6, 3, 0.8, 9)
	model := NewModel(GAT, 6, 6, 2, 21)
	sd := NewSingleDevice(model, g, 22)
	features := tensor.New(g.NumVertices(), 6).FillRandom(23)
	first := sd.Epoch(features)
	model.Step(0.003)
	var last float64
	for i := 0; i < 15; i++ {
		last = sd.Epoch(features)
		model.Step(0.003)
	}
	if last >= first {
		t.Fatalf("GAT loss did not decrease: %v -> %v", first, last)
	}
}

func TestGATModelKindWiring(t *testing.T) {
	m := NewModel(GAT, 4, 5, 2, 1)
	if _, ok := m.Layers[0].(*GATLayer); !ok {
		t.Fatal("GAT kind should build GATLayers")
	}
	if m.FLOPsPerEpoch(1000, 5000) <= 0 || m.ActivationFloatsPerVertex(4) <= 0 {
		t.Fatal("accounting broken")
	}
}
