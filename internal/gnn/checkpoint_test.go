package gnn

import (
	"bytes"
	"strings"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	for _, kind := range []ModelKind{GCN, CommNet, GIN, GraphSAGE, GAT} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m := NewModel(kind, 6, 5, 2, 42)
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != m.Kind || len(got.Layers) != len(m.Layers) {
				t.Fatalf("structure changed: %v/%d", got.Kind, len(got.Layers))
			}
			for li := range m.Layers {
				wp, gp := m.Layers[li].Params(), got.Layers[li].Params()
				if len(wp) != len(gp) {
					t.Fatalf("layer %d param count", li)
				}
				for pi := range wp {
					if tensor.MaxAbsDiff(wp[pi], gp[pi]) != 0 {
						t.Fatalf("layer %d param %d changed", li, pi)
					}
				}
			}
		})
	}
}

func TestCheckpointResumesTraining(t *testing.T) {
	// Training for 5 epochs must equal training 2, checkpointing, loading,
	// and training 3 more.
	g := graph.Ring(30)
	features := tensor.New(30, 4).FillRandom(1)
	mkSD := func(m *Model) *SingleDevice {
		sd := NewSingleDevice(m, g, 2)
		return sd
	}
	straight := NewModel(GCN, 4, 3, 2, 7)
	sdA := mkSD(straight)
	for i := 0; i < 5; i++ {
		sdA.Epoch(features)
		straight.Step(0.01)
	}

	resumed := NewModel(GCN, 4, 3, 2, 7)
	sdB := mkSD(resumed)
	for i := 0; i < 2; i++ {
		sdB.Epoch(features)
		resumed.Step(0.01)
	}
	var buf bytes.Buffer
	if err := resumed.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sdC := mkSD(loaded)
	for i := 0; i < 3; i++ {
		sdC.Epoch(features)
		loaded.Step(0.01)
	}
	for li := range straight.Layers {
		for pi, p := range straight.Layers[li].Params() {
			if diff := tensor.MaxAbsDiff(p, loaded.Layers[li].Params()[pi]); diff != 0 {
				t.Fatalf("resume diverged at layer %d param %d: %v", li, pi, diff)
			}
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	cases := []string{
		"",
		"NOTMAGIC",
		"DGCLCKPT",                     // truncated after magic
		"DGCLCKPT\x03\x00\x00\x00GCN",  // truncated after kind
		"DGCLCKPT\x04\x00\x00\x00BLOB", // unknown kind
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestCheckpointRejectsImplausible(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("DGCLCKPT")
	buf.Write([]byte{3, 0, 0, 0})
	buf.WriteString("GCN")
	buf.Write([]byte{255, 255, 255, 127}) // absurd layer count
	if _, err := Load(&buf); err == nil {
		t.Fatal("absurd layer count should fail")
	}
}
