package gnn

import (
	"math"

	"dgcl/internal/tensor"
)

// SAGELayer implements GraphSAGE with the max-pooling aggregator
// (Hamilton et al., cited as [8] in the paper):
//
//	pool_v = ReLU(h_v · Wpool + bpool)                 (every input row)
//	a_u    = elementwise-max over v ∈ N(u) of pool_v
//	out_u  = ReLU(h_u · Wself + a_u · Wneigh + b)
//
// Max aggregation is order-independent, so distributed execution matches
// single-device execution exactly; the backward pass routes each feature's
// gradient to the argmax neighbor, which exercises a different (sparser,
// more irregular) gradient flow than the sum/mean models.
type SAGELayer struct {
	Wpool, Bpool, Wself, Wneigh, B      *tensor.Matrix
	gWpool, gBpool, gWself, gWneigh, gB *tensor.Matrix

	in, poolPre, pool, agg, pre *tensor.Matrix
	argmax                      []int32 // (u*cols + j) -> input row index, -1 if none
}

// NewSAGELayer builds a GraphSAGE layer whose pooling width equals the
// output width.
func NewSAGELayer(in, out int, seed int64) *SAGELayer {
	return &SAGELayer{
		Wpool: tensor.New(in, out).Xavier(seed), Bpool: tensor.New(1, out),
		Wself: tensor.New(in, out).Xavier(seed + 1), Wneigh: tensor.New(out, out).Xavier(seed + 2),
		B:      tensor.New(1, out),
		gWpool: tensor.New(in, out), gBpool: tensor.New(1, out),
		gWself: tensor.New(in, out), gWneigh: tensor.New(out, out), gB: tensor.New(1, out),
	}
}

// InDim returns the input embedding width.
func (l *SAGELayer) InDim() int { return l.Wpool.Rows }

// OutDim returns the output embedding width.
func (l *SAGELayer) OutDim() int { return l.Wneigh.Cols }

// Forward computes the max-pool SAGE update for the first agg.NumOut rows.
func (l *SAGELayer) Forward(agg *Aggregator, h *tensor.Matrix) *tensor.Matrix {
	l.in = h
	l.poolPre = tensor.MatMul(h, l.Wpool)
	tensor.AddBiasInPlace(l.poolPre, l.Bpool)
	l.pool = tensor.ReLU(l.poolPre)
	cols := l.pool.Cols
	l.agg = tensor.New(agg.NumOut, cols)
	l.argmax = make([]int32, agg.NumOut*cols)
	for i := range l.argmax {
		l.argmax[i] = -1
	}
	for u := 0; u < agg.NumOut; u++ {
		arow := l.agg.Row(u)
		for j := range arow {
			arow[j] = float32(math.Inf(-1))
		}
		for _, v := range agg.G.Neighbors(int32(u)) {
			prow := l.pool.Row(int(v))
			for j, x := range prow {
				if x > arow[j] {
					arow[j] = x
					l.argmax[u*cols+j] = v
				}
			}
		}
		// Isolated vertices aggregate zero.
		for j := range arow {
			if math.IsInf(float64(arow[j]), -1) {
				arow[j] = 0
			}
		}
	}
	self := selfRows(h, agg.NumOut)
	l.pre = tensor.MatMul(self, l.Wself)
	tensor.AddInPlace(l.pre, tensor.MatMul(l.agg, l.Wneigh))
	tensor.AddBiasInPlace(l.pre, l.B)
	return tensor.ReLU(l.pre)
}

// Backward propagates through the max-pool: each aggregated feature's
// gradient flows only to the neighbor that won the max.
func (l *SAGELayer) Backward(agg *Aggregator, gradOut *tensor.Matrix) *tensor.Matrix {
	gradPre := tensor.ReLUGrad(l.pre, gradOut)
	self := selfRows(l.in, agg.NumOut)
	tensor.AddInPlace(l.gWself, tensor.MatMulATB(self, gradPre))
	tensor.AddInPlace(l.gWneigh, tensor.MatMulATB(l.agg, gradPre))
	tensor.AddInPlace(l.gB, tensor.BiasGrad(gradPre))

	gradAgg := tensor.MatMulABT(gradPre, l.Wneigh)
	// Route to argmax pool rows.
	gradPool := tensor.New(l.pool.Rows, l.pool.Cols)
	cols := l.pool.Cols
	for u := 0; u < agg.NumOut; u++ {
		grow := gradAgg.Row(u)
		for j, x := range grow {
			if v := l.argmax[u*cols+j]; v >= 0 {
				gradPool.Row(int(v))[j] += x
			}
		}
	}
	gradPoolPre := tensor.ReLUGrad(l.poolPre, gradPool)
	tensor.AddInPlace(l.gWpool, tensor.MatMulATB(l.in, gradPoolPre))
	tensor.AddInPlace(l.gBpool, tensor.BiasGrad(gradPoolPre))

	gradIn := tensor.MatMulABT(gradPoolPre, l.Wpool)
	gradSelf := tensor.MatMulABT(gradPre, l.Wself)
	tensor.AddInPlace(selfRows(gradIn, agg.NumOut), gradSelf)
	return gradIn
}

// Params returns the trainable parameters.
func (l *SAGELayer) Params() []*tensor.Matrix {
	return []*tensor.Matrix{l.Wpool, l.Bpool, l.Wself, l.Wneigh, l.B}
}

// Grads returns the accumulated gradients, aligned with Params.
func (l *SAGELayer) Grads() []*tensor.Matrix {
	return []*tensor.Matrix{l.gWpool, l.gBpool, l.gWself, l.gWneigh, l.gB}
}

// ZeroGrads clears the gradients.
func (l *SAGELayer) ZeroGrads() {
	l.gWpool.Zero()
	l.gBpool.Zero()
	l.gWself.Zero()
	l.gWneigh.Zero()
	l.gB.Zero()
}

// FLOPs: pooling GEMM over all rows, max scan over edges, two output GEMMs.
func (l *SAGELayer) FLOPs(vertices, edges int64) int64 {
	in, out := int64(l.InDim()), int64(l.OutDim())
	return 2*vertices*in*out + edges*out + 2*vertices*in*out + 2*vertices*out*out
}

// SparseFLOPs is the per-edge max scan.
func (l *SAGELayer) SparseFLOPs(edges int64) int64 { return edges * int64(l.OutDim()) }

// CacheFloatsPerVertex: poolPre + pool + agg + pre (+argmax ids ≈ 1 float).
func (l *SAGELayer) CacheFloatsPerVertex() int64 {
	return int64(4*l.OutDim() + 1)
}
