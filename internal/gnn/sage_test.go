package gnn

import (
	"math"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

func TestSAGEMaxPoolKnown(t *testing.T) {
	// Star: vertex 0 aggregates from 1 and 2.
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, false)
	l := NewSAGELayer(1, 2, 1)
	// Identity-ish pooling: Wpool = [[1, -1]], bias 0, so pool_v =
	// [relu(h), relu(-h)].
	l.Wpool.Set(0, 0, 1)
	l.Wpool.Set(0, 1, -1)
	agg := NewAggregator(g, 1, false)
	h := tensor.FromData(3, 1, []float32{0, 5, -7})
	l.Forward(agg, h)
	// pool rows: v1 = [5, 0], v2 = [0, 7]; max = [5, 7].
	if l.agg.At(0, 0) != 5 || l.agg.At(0, 1) != 7 {
		t.Fatalf("max agg = %v", l.agg.Data)
	}
	if l.argmax[0] != 1 || l.argmax[1] != 2 {
		t.Fatalf("argmax = %v", l.argmax)
	}
}

func TestSAGEIsolatedVertexAggregatesZero(t *testing.T) {
	g := graph.MustFromEdges(2, nil, false)
	l := NewSAGELayer(2, 3, 2)
	agg := NewAggregator(g, 2, false)
	out := l.Forward(agg, tensor.New(2, 2).FillRandom(1))
	for i := range l.agg.Data {
		if l.agg.Data[i] != 0 {
			t.Fatalf("isolated agg = %v", l.agg.Data)
		}
	}
	if out.Rows != 2 {
		t.Fatal("bad output shape")
	}
}

func TestSAGEGradCheck(t *testing.T) {
	g := graph.Ring(6)
	layer := NewSAGELayer(3, 4, 42)
	pushAwayFromKinks(layer)
	agg := NewAggregator(g, 6, false)
	features := tensor.New(6, 3).FillRandom(1)
	target := tensor.New(6, 4).FillRandom(2)

	lossOf := func() float64 {
		out := layer.Forward(agg, features)
		loss, _ := MSELossGrad(out, target)
		return loss
	}
	layer.ZeroGrads()
	out := layer.Forward(agg, features)
	_, grad := MSELossGrad(out, target)
	layer.Backward(agg, grad)

	const eps = 1e-2
	for pi, p := range layer.Params() {
		gAnalytic := layer.Grads()[pi]
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			orig := p.Data[idx]
			p.Data[idx] = orig + eps
			lp := lossOf()
			p.Data[idx] = orig - eps
			lm := lossOf()
			p.Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(gAnalytic.Data[idx])
			if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
				t.Fatalf("param %d idx %d: numeric %v analytic %v", pi, idx, numeric, analytic)
			}
		}
	}
}

func TestSAGEInputGradCheck(t *testing.T) {
	g := graph.Ring(5)
	layer := NewSAGELayer(2, 3, 7)
	pushAwayFromKinks(layer)
	agg := NewAggregator(g, 5, false)
	features := tensor.New(5, 2).FillRandom(3)
	target := tensor.New(5, 3).FillRandom(4)

	layer.ZeroGrads()
	out := layer.Forward(agg, features)
	_, grad := MSELossGrad(out, target)
	gradIn := layer.Backward(agg, grad)

	const eps = 5e-3
	for _, idx := range []int{0, 3, 9} {
		orig := features.Data[idx]
		features.Data[idx] = orig + eps
		lp, _ := MSELossGrad(layer.Forward(agg, features), target)
		features.Data[idx] = orig - eps
		lm, _ := MSELossGrad(layer.Forward(agg, features), target)
		features.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(gradIn.Data[idx])
		if math.Abs(numeric-analytic) > 3e-2*(1+math.Abs(numeric)) {
			t.Fatalf("input grad idx %d: numeric %v analytic %v", idx, numeric, analytic)
		}
	}
}

func TestSAGETrainingReducesLoss(t *testing.T) {
	g := graph.CommunityGraph(80, 6, 3, 0.8, 9)
	model := NewModel(GraphSAGE, 6, 6, 2, 21)
	sd := NewSingleDevice(model, g, 22)
	features := tensor.New(g.NumVertices(), 6).FillRandom(23)
	first := sd.Epoch(features)
	model.Step(0.005)
	var last float64
	for i := 0; i < 15; i++ {
		last = sd.Epoch(features)
		model.Step(0.005)
	}
	if last >= first {
		t.Fatalf("SAGE loss did not decrease: %v -> %v", first, last)
	}
}

func TestSAGEModelKindWiring(t *testing.T) {
	m := NewModel(GraphSAGE, 4, 5, 2, 1)
	if _, ok := m.Layers[0].(*SAGELayer); !ok {
		t.Fatal("GraphSAGE kind should build SAGELayers")
	}
	if GraphSAGE.NeedsMeanAggregator() {
		t.Fatal("SAGE does not use the mean aggregator")
	}
	if m.FLOPsPerEpoch(1000, 5000) <= 0 || m.SparseFLOPsPerEpoch(5000) <= 0 {
		t.Fatal("FLOPs accounting broken")
	}
	if m.ActivationFloatsPerVertex(4) <= 0 {
		t.Fatal("activation accounting broken")
	}
}
