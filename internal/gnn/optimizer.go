package gnn

import (
	"fmt"
	"math"

	"dgcl/internal/tensor"
)

// Optimizer applies accumulated model gradients to parameters. Distributed
// training keeps one optimizer per replica; because gradients are
// allreduced before Step, all replicas evolve identically.
type Optimizer interface {
	// Step applies one update using the model's current gradients and
	// clears them.
	Step(m *Model)
	// Name identifies the optimizer for logs.
	Name() string
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	velocity map[*tensor.Matrix]*tensor.Matrix
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*tensor.Matrix]*tensor.Matrix)}
}

// Name implements Optimizer.
func (o *SGD) Name() string { return fmt.Sprintf("sgd(lr=%g,m=%g)", o.LR, o.Momentum) }

// Step implements Optimizer.
func (o *SGD) Step(m *Model) {
	for _, l := range m.Layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			g := grads[i]
			if o.Momentum == 0 {
				for j := range p.Data {
					p.Data[j] -= o.LR * g.Data[j]
				}
				continue
			}
			v := o.velocity[p]
			if v == nil {
				v = tensor.New(p.Rows, p.Cols)
				o.velocity[p] = v
			}
			for j := range p.Data {
				v.Data[j] = o.Momentum*v.Data[j] + g.Data[j]
				p.Data[j] -= o.LR * v.Data[j]
			}
		}
		l.ZeroGrads()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	step                  int
	m, v                  map[*tensor.Matrix]*tensor.Matrix
}

// NewAdam builds an Adam optimizer with standard defaults for unset fields.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*tensor.Matrix]*tensor.Matrix), v: make(map[*tensor.Matrix]*tensor.Matrix),
	}
}

// Name implements Optimizer.
func (o *Adam) Name() string { return fmt.Sprintf("adam(lr=%g)", o.LR) }

// Step implements Optimizer.
func (o *Adam) Step(model *Model) {
	o.step++
	c1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.step)))
	c2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.step)))
	for _, l := range model.Layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			g := grads[i]
			mb := o.m[p]
			vb := o.v[p]
			if mb == nil {
				mb = tensor.New(p.Rows, p.Cols)
				vb = tensor.New(p.Rows, p.Cols)
				o.m[p] = mb
				o.v[p] = vb
			}
			for j := range p.Data {
				gj := g.Data[j]
				mb.Data[j] = o.Beta1*mb.Data[j] + (1-o.Beta1)*gj
				vb.Data[j] = o.Beta2*vb.Data[j] + (1-o.Beta2)*gj*gj
				mhat := mb.Data[j] / c1
				vhat := vb.Data[j] / c2
				p.Data[j] -= o.LR * mhat / (float32(math.Sqrt(float64(vhat))) + o.Eps)
			}
		}
		l.ZeroGrads()
	}
}
