package gnn

import (
	"fmt"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

// Model is a stack of propagation layers of one kind.
type Model struct {
	Kind   ModelKind
	Layers []Layer
}

// NewModel builds a numLayers-deep model with the given input and hidden
// dimensions (all hidden layers share hiddenDim, as in the paper's Table 4
// configurations). Weights are seeded deterministically from seed.
func NewModel(kind ModelKind, inDim, hiddenDim, numLayers int, seed int64) *Model {
	if numLayers < 1 {
		panic(fmt.Sprintf("gnn: model needs >=1 layers, got %d", numLayers))
	}
	m := &Model{Kind: kind}
	in := inDim
	for l := 0; l < numLayers; l++ {
		m.Layers = append(m.Layers, kind.NewLayer(in, hiddenDim, seed+int64(l)*1000))
		in = hiddenDim
	}
	return m
}

// Clone returns a model with identical weights and zeroed gradients.
func (m *Model) Clone() *Model {
	out := &Model{Kind: m.Kind}
	for i, l := range m.Layers {
		nl := m.Kind.NewLayer(l.InDim(), l.OutDim(), int64(i))
		for pi, p := range l.Params() {
			copy(nl.Params()[pi].Data, p.Data)
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}

// ZeroGrads clears the accumulated gradients of every layer.
func (m *Model) ZeroGrads() {
	for _, l := range m.Layers {
		l.ZeroGrads()
	}
}

// Step applies one SGD update with the given learning rate and clears grads.
func (m *Model) Step(lr float32) {
	for _, l := range m.Layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			g := grads[i]
			for j := range p.Data {
				p.Data[j] -= lr * g.Data[j]
			}
		}
		l.ZeroGrads()
	}
}

// FLOPsPerEpoch estimates the forward+backward floating point work of one
// full-graph epoch over a (sub)graph with the given vertex and edge counts.
func (m *Model) FLOPsPerEpoch(vertices, edges int64) int64 {
	var f int64
	for _, l := range m.Layers {
		f += 3 * l.FLOPs(vertices, edges) // forward + ~2x backward
	}
	return f
}

// MSELossGrad computes 0.5*Σ(out-target)² and its gradient (out - target).
func MSELossGrad(out, target *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := tensor.New(out.Rows, out.Cols)
	for i := range out.Data {
		grad.Data[i] = out.Data[i] - target.Data[i]
	}
	// 0.5·Σd² equals the historical per-element Σ(0.5·d²) bit for bit:
	// scaling by a power of two is exact, so it commutes with each rounding.
	loss := 0.5 * tensor.SumSquares(grad.Data)
	return loss, grad
}

// SingleDevice trains a model on one device holding the whole graph; it is
// the reference implementation distributed training is verified against.
type SingleDevice struct {
	Model  *Model
	Agg    *Aggregator
	G      *graph.Graph
	Target *tensor.Matrix
}

// NewSingleDevice prepares single-device full-graph training with a
// deterministic synthetic regression target.
func NewSingleDevice(m *Model, g *graph.Graph, seed int64) *SingleDevice {
	n := g.NumVertices()
	outDim := m.Layers[len(m.Layers)-1].OutDim()
	return &SingleDevice{
		Model:  m,
		Agg:    NewAggregator(g, n, m.Kind.NeedsMeanAggregator()),
		G:      g,
		Target: tensor.New(n, outDim).FillRandom(seed),
	}
}

// Forward runs all layers over the features and returns the final
// embeddings together with the per-layer inputs (needed by Backward).
func (sd *SingleDevice) Forward(features *tensor.Matrix) (*tensor.Matrix, []*tensor.Matrix) {
	h := features
	inputs := make([]*tensor.Matrix, 0, len(sd.Model.Layers))
	for _, l := range sd.Model.Layers {
		inputs = append(inputs, h)
		h = l.Forward(sd.Agg, h)
	}
	return h, inputs
}

// Epoch runs one forward+backward pass, accumulates gradients and returns
// the loss. Call Model.Step to apply updates.
func (sd *SingleDevice) Epoch(features *tensor.Matrix) float64 {
	out, _ := sd.Forward(features)
	loss, grad := MSELossGrad(out, sd.Target)
	for i := len(sd.Model.Layers) - 1; i >= 0; i-- {
		grad = sd.Model.Layers[i].Backward(sd.Agg, grad)
	}
	return loss
}

// SparseFLOPsPerEpoch is the aggregation portion of FLOPsPerEpoch.
func (m *Model) SparseFLOPsPerEpoch(edges int64) int64 {
	var f int64
	for _, l := range m.Layers {
		f += 3 * l.SparseFLOPs(edges)
	}
	return f
}

// ActivationFloatsPerVertex estimates the float32 count each resident vertex
// costs during training: the input features, every layer's cached tensors,
// and the output plus its gradient.
func (m *Model) ActivationFloatsPerVertex(featureDim int) int64 {
	f := int64(featureDim)
	for _, l := range m.Layers {
		f += l.CacheFloatsPerVertex()
	}
	f += 2 * int64(m.Layers[len(m.Layers)-1].OutDim())
	return f
}
