package gnn

import (
	"math"

	"dgcl/internal/tensor"
)

// GATLayer implements a single-head graph attention layer (Veličković et
// al., cited as [33] in the paper):
//
//	z_v   = h_v · W
//	e_uv  = LeakyReLU(a_l·z_u + a_r·z_v)        for v ∈ N(u)
//	α_u·  = softmax over N(u) of e_u·
//	out_u = ReLU(Σ_v α_uv z_v + b)
//
// Attention is the hardest model for distributed execution to get right:
// the softmax normalizes over each vertex's full neighborhood, so remote
// embeddings must be present before normalization — precisely what
// graphAllgather guarantees — and the backward pass couples gradients of
// every neighbor through the softmax Jacobian.
type GATLayer struct {
	W, AttL, AttR, B     *tensor.Matrix
	gW, gAttL, gAttR, gB *tensor.Matrix
	negativeSlope        float32

	in, z, pre *tensor.Matrix
	sl, sr     []float32 // attention logits per row
	alpha      []float32 // per-edge attention, CSR order over agg.G
	argPos     []bool    // per-edge: LeakyReLU argument > 0
}

// NewGATLayer builds a single-head GAT layer.
func NewGATLayer(in, out int, seed int64) *GATLayer {
	return &GATLayer{
		W: tensor.New(in, out).Xavier(seed), AttL: tensor.New(out, 1).Xavier(seed + 1),
		AttR: tensor.New(out, 1).Xavier(seed + 2), B: tensor.New(1, out),
		gW: tensor.New(in, out), gAttL: tensor.New(out, 1),
		gAttR: tensor.New(out, 1), gB: tensor.New(1, out),
		negativeSlope: 0.2,
	}
}

// InDim returns the input width.
func (l *GATLayer) InDim() int { return l.W.Rows }

// OutDim returns the output width.
func (l *GATLayer) OutDim() int { return l.W.Cols }

// Forward computes attention over each local vertex's (local + remote)
// neighborhood.
func (l *GATLayer) Forward(agg *Aggregator, h *tensor.Matrix) *tensor.Matrix {
	l.in = h
	l.z = tensor.MatMul(h, l.W)
	rows := h.Rows
	l.sl = make([]float32, rows)
	l.sr = make([]float32, rows)
	al := l.AttL.Data
	ar := l.AttR.Data
	for r := 0; r < rows; r++ {
		zr := l.z.Row(r)
		l.sl[r] = tensor.Dot(zr, al)
		l.sr[r] = tensor.Dot(zr, ar)
	}
	l.alpha = make([]float32, 0, agg.G.NumEdges())
	l.argPos = make([]bool, 0, agg.G.NumEdges())
	l.pre = tensor.New(agg.NumOut, l.z.Cols)
	for u := 0; u < agg.NumOut; u++ {
		nbrs := agg.G.Neighbors(int32(u))
		if len(nbrs) == 0 {
			continue
		}
		// Numerically stable softmax over the neighborhood.
		logits := make([]float32, len(nbrs))
		maxLogit := float32(math.Inf(-1))
		for i, v := range nbrs {
			arg := l.sl[u] + l.sr[v]
			pos := arg > 0
			e := arg
			if !pos {
				e = arg * l.negativeSlope
			}
			logits[i] = e
			l.argPos = append(l.argPos, pos)
			if e > maxLogit {
				maxLogit = e
			}
		}
		for i := range logits {
			logits[i] = float32(math.Exp(float64(logits[i] - maxLogit)))
		}
		sum := tensor.Sum(logits)
		prow := l.pre.Row(u)
		for i, v := range nbrs {
			a := logits[i] / sum
			l.alpha = append(l.alpha, a)
			zv := l.z.Row(int(v))
			for j, x := range zv {
				prow[j] += a * x
			}
		}
	}
	out := l.pre.Clone()
	tensor.AddBiasInPlace(out, l.B)
	l.pre = out.Clone() // cache pre-activation including bias
	return tensor.ReLU(out)
}

// Backward propagates through the attention softmax.
func (l *GATLayer) Backward(agg *Aggregator, gradOut *tensor.Matrix) *tensor.Matrix {
	gradPre := tensor.ReLUGrad(l.pre, gradOut)
	tensor.AddInPlace(l.gB, tensor.BiasGrad(gradPre))

	rows := l.in.Rows
	gradZ := tensor.New(rows, l.z.Cols)
	gradSL := make([]float32, rows)
	gradSR := make([]float32, rows)
	ei := 0
	for u := 0; u < agg.NumOut; u++ {
		nbrs := agg.G.Neighbors(int32(u))
		if len(nbrs) == 0 {
			continue
		}
		gu := gradPre.Row(u)
		// gradAlpha_i = gu · z_v; softmax Jacobian needs Σ α_i gradAlpha_i.
		gradAlpha := make([]float32, len(nbrs))
		for i, v := range nbrs {
			gradAlpha[i] = tensor.Dot(gu, l.z.Row(int(v)))
		}
		inner := tensor.Dot(l.alpha[ei:ei+len(nbrs)], gradAlpha)
		for i, v := range nbrs {
			a := l.alpha[ei+i]
			// z_v receives the α-weighted output gradient.
			zg := gradZ.Row(int(v))
			for j, x := range gu {
				zg[j] += a * x
			}
			gradE := a * (gradAlpha[i] - inner)
			if !l.argPos[ei+i] {
				gradE *= l.negativeSlope
			}
			gradSL[u] += gradE
			gradSR[v] += gradE
		}
		ei += len(nbrs)
	}
	// s_l = z·a_l and s_r = z·a_r contribute to z and the attention vectors.
	al := l.AttL.Data
	ar := l.AttR.Data
	for r := 0; r < rows; r++ {
		zr := l.z.Row(r)
		zg := gradZ.Row(r)
		for j := range zr {
			zg[j] += gradSL[r]*al[j] + gradSR[r]*ar[j]
			l.gAttL.Data[j] += gradSL[r] * zr[j]
			l.gAttR.Data[j] += gradSR[r] * zr[j]
		}
	}
	tensor.AddInPlace(l.gW, tensor.MatMulATB(l.in, gradZ))
	return tensor.MatMulABT(gradZ, l.W)
}

// Params returns the trainable parameters.
func (l *GATLayer) Params() []*tensor.Matrix {
	return []*tensor.Matrix{l.W, l.AttL, l.AttR, l.B}
}

// Grads returns the accumulated gradients.
func (l *GATLayer) Grads() []*tensor.Matrix {
	return []*tensor.Matrix{l.gW, l.gAttL, l.gAttR, l.gB}
}

// ZeroGrads clears the gradients.
func (l *GATLayer) ZeroGrads() {
	l.gW.Zero()
	l.gAttL.Zero()
	l.gAttR.Zero()
	l.gB.Zero()
}

// FLOPs: projection GEMM + per-edge attention (logit, softmax, weighted sum).
func (l *GATLayer) FLOPs(vertices, edges int64) int64 {
	in, out := int64(l.InDim()), int64(l.OutDim())
	return 2*vertices*in*out + 4*edges*out
}

// SparseFLOPs is the per-edge attention work.
func (l *GATLayer) SparseFLOPs(edges int64) int64 { return 4 * edges * int64(l.OutDim()) }

// CacheFloatsPerVertex: z + pre + logits (~avg degree amortized into 2*out).
func (l *GATLayer) CacheFloatsPerVertex() int64 { return int64(4 * l.OutDim()) }
