package gnn

import (
	"fmt"
	"math/rand"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

// Neighbor-sampled minibatch training, the alternative to full-graph
// training that §2 of the paper discusses (and sets aside because of its
// potential accuracy loss — sampled aggregation is a biased estimate for
// nonlinear models). Implemented GraphSAGE-style: for a batch of seed
// vertices, each layer samples up to fanout neighbors per destination
// vertex, producing a stack of bipartite blocks that the existing layers
// execute unchanged (their aggregator abstraction already computes outputs
// for a prefix of the input rows).

// Block is one layer's sampled computation graph: the first NumDst input
// rows are the layer's output vertices, the remaining rows their sampled
// neighbors; edges run from each destination to its sampled inputs.
type Block struct {
	NumDst int
	Srcs   []int32 // global ids of all input rows (dsts form the prefix)
	G      *graph.Graph
}

// MiniBatch is a sampled multi-layer computation: Blocks[0] is the input
// layer (its Srcs select the feature rows) and Blocks[len-1] outputs exactly
// the seeds.
type MiniBatch struct {
	Seeds  []int32
	Blocks []*Block
}

// NeighborSampler samples fixed fan-out neighborhoods.
type NeighborSampler struct {
	// FanOuts[l] caps the neighbors sampled per vertex at layer l (input
	// layer first). 0 or negative means take all neighbors.
	FanOuts []int
	rng     *rand.Rand
}

// NewNeighborSampler builds a sampler with one fan-out per layer.
func NewNeighborSampler(fanOuts []int, seed int64) *NeighborSampler {
	return &NeighborSampler{FanOuts: fanOuts, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws the computation blocks for the seed batch over g.
func (s *NeighborSampler) Sample(g *graph.Graph, seeds []int32) (*MiniBatch, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("gnn: empty seed batch")
	}
	layers := len(s.FanOuts)
	if layers == 0 {
		return nil, fmt.Errorf("gnn: sampler has no fan-outs")
	}
	mb := &MiniBatch{Seeds: seeds, Blocks: make([]*Block, layers)}
	// Build top-down: the last block's destinations are the seeds; each
	// lower block's destinations are the previous block's inputs.
	dsts := seeds
	for l := layers - 1; l >= 0; l-- {
		fan := s.FanOuts[l]
		srcs := make([]int32, 0, len(dsts)*2)
		index := make(map[int32]int32, len(dsts)*2)
		for _, v := range dsts {
			index[v] = int32(len(srcs))
			srcs = append(srcs, v)
		}
		var edges []graph.Edge
		for di, v := range dsts {
			nbrs := g.Neighbors(v)
			chosen := nbrs
			if fan > 0 && len(nbrs) > fan {
				perm := s.rng.Perm(len(nbrs))[:fan]
				chosen = make([]int32, fan)
				for i, pi := range perm {
					chosen[i] = nbrs[pi]
				}
			}
			for _, u := range chosen {
				ui, ok := index[u]
				if !ok {
					ui = int32(len(srcs))
					index[u] = ui
					srcs = append(srcs, u)
				}
				edges = append(edges, graph.Edge{Src: int32(di), Dst: ui})
			}
		}
		bg, err := graph.FromEdges(len(srcs), edges, false)
		if err != nil {
			return nil, err
		}
		mb.Blocks[l] = &Block{NumDst: len(dsts), Srcs: srcs, G: bg}
		dsts = srcs
	}
	return mb, nil
}

// MinibatchForward runs the model over a sampled minibatch, returning one
// output row per seed. The mean flag of each aggregator follows the model
// kind, matching full-graph training semantics (degrees are the *sampled*
// degrees, which is where sampling's bias comes from).
func MinibatchForward(m *Model, mb *MiniBatch, features *tensor.Matrix) (*tensor.Matrix, error) {
	if len(mb.Blocks) != len(m.Layers) {
		return nil, fmt.Errorf("gnn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers))
	}
	h := tensor.GatherRows(features, mb.Blocks[0].Srcs)
	for l, layer := range m.Layers {
		blk := mb.Blocks[l]
		if h.Rows != len(blk.Srcs) {
			return nil, fmt.Errorf("gnn: layer %d input %d rows, block wants %d", l, h.Rows, len(blk.Srcs))
		}
		agg := NewAggregator(blk.G, blk.NumDst, m.Kind.NeedsMeanAggregator())
		h = layer.Forward(agg, h)
	}
	return h, nil
}

// MinibatchEpoch runs one sampled forward+backward over the seeds and
// accumulates model gradients; returns the batch loss.
func MinibatchEpoch(m *Model, mb *MiniBatch, features, targets *tensor.Matrix) (float64, error) {
	// Forward with cached aggregators for backward.
	if len(mb.Blocks) != len(m.Layers) {
		return 0, fmt.Errorf("gnn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers))
	}
	aggs := make([]*Aggregator, len(m.Layers))
	h := tensor.GatherRows(features, mb.Blocks[0].Srcs)
	for l, layer := range m.Layers {
		blk := mb.Blocks[l]
		aggs[l] = NewAggregator(blk.G, blk.NumDst, m.Kind.NeedsMeanAggregator())
		h = layer.Forward(aggs[l], h)
	}
	batchTargets := tensor.GatherRows(targets, mb.Seeds)
	loss, grad := MSELossGrad(h, batchTargets)
	for l := len(m.Layers) - 1; l >= 0; l-- {
		grad = m.Layers[l].Backward(aggs[l], grad)
	}
	return loss, nil
}

// MinibatchEpochFrom is MinibatchEpoch for callers that already assembled
// the layer-0 input rows (in mb.Blocks[0].Srcs order) and the per-seed
// targets — the entry point distributed sampled training uses after fetching
// remote features.
func MinibatchEpochFrom(m *Model, mb *MiniBatch, h0, batchTargets *tensor.Matrix) (float64, error) {
	if len(mb.Blocks) != len(m.Layers) {
		return 0, fmt.Errorf("gnn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers))
	}
	if h0.Rows != len(mb.Blocks[0].Srcs) {
		return 0, fmt.Errorf("gnn: h0 has %d rows, block 0 wants %d", h0.Rows, len(mb.Blocks[0].Srcs))
	}
	aggs := make([]*Aggregator, len(m.Layers))
	h := h0
	for l, layer := range m.Layers {
		blk := mb.Blocks[l]
		aggs[l] = NewAggregator(blk.G, blk.NumDst, m.Kind.NeedsMeanAggregator())
		h = layer.Forward(aggs[l], h)
	}
	loss, grad := MSELossGrad(h, batchTargets)
	for l := len(m.Layers) - 1; l >= 0; l-- {
		grad = m.Layers[l].Backward(aggs[l], grad)
	}
	return loss, nil
}
