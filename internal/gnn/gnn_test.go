package gnn

import (
	"math"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

func TestAggregatorMeanKnown(t *testing.T) {
	// Path 0-1-2 (symmetric). Mean aggregation of vertex 1 = (h0+h2)/2.
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1}}, false)
	h := tensor.FromData(3, 1, []float32{1, 10, 3})
	agg := NewAggregator(g, 3, true)
	out := agg.Forward(h)
	if out.At(0, 0) != 10 || out.At(1, 0) != 2 || out.At(2, 0) != 10 {
		t.Fatalf("mean agg = %v", out.Data)
	}
	sum := NewAggregator(g, 3, false)
	out = sum.Forward(h)
	if out.At(1, 0) != 4 {
		t.Fatalf("sum agg = %v", out.Data)
	}
}

func TestAggregatorBackwardIsTranspose(t *testing.T) {
	g := graph.ErdosRenyi(20, 80, 1)
	agg := NewAggregator(g, 20, true)
	// <A h, g> == <h, Aᵀ g> for random h, g.
	h := tensor.New(20, 3).FillRandom(2)
	gr := tensor.New(20, 3).FillRandom(3)
	ah := agg.Forward(h)
	atg := agg.Backward(gr)
	var lhs, rhs float64
	for i := range ah.Data {
		lhs += float64(ah.Data[i]) * float64(gr.Data[i])
	}
	for i := range h.Data {
		rhs += float64(h.Data[i]) * float64(atg.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*math.Abs(lhs) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestAggregatorPartialOutput(t *testing.T) {
	// Local-graph shape: only the first 2 of 4 rows are produced.
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}}, false)
	h := tensor.FromData(4, 1, []float32{0, 0, 5, 7})
	agg := NewAggregator(g, 2, false)
	out := agg.Forward(h)
	if out.Rows != 2 || out.At(0, 0) != 5 || out.At(1, 0) != 7 {
		t.Fatalf("partial agg = %+v", out)
	}
	back := agg.Backward(tensor.FromData(2, 1, []float32{1, 2}))
	if back.Rows != 4 || back.At(2, 0) != 1 || back.At(3, 0) != 2 || back.At(0, 0) != 0 {
		t.Fatalf("partial backward = %v", back.Data)
	}
}

// pushAwayFromKinks scales weight matrices down and lifts biases so that
// every ReLU pre-activation is strictly positive: finite differences are
// then exact derivatives instead of straddling the ReLU kink.
func pushAwayFromKinks(layer Layer) {
	for _, p := range layer.Params() {
		if p.Rows == 1 { // bias
			for i := range p.Data {
				p.Data[i] = 1
			}
		} else {
			tensor.ScaleInPlace(p, 0.1)
		}
	}
}

// numericalGradCheck verifies analytic parameter gradients of one layer by
// central differences on a tiny graph.
func numericalGradCheck(t *testing.T, kind ModelKind) {
	t.Helper()
	g := graph.Ring(6)
	model := NewModel(kind, 3, 4, 1, 42)
	layer := model.Layers[0]
	pushAwayFromKinks(layer)
	agg := NewAggregator(g, 6, kind.NeedsMeanAggregator())
	features := tensor.New(6, 3).FillRandom(1)
	target := tensor.New(6, 4).FillRandom(2)

	lossOf := func() float64 {
		out := layer.Forward(agg, features)
		loss, _ := MSELossGrad(out, target)
		return loss
	}
	// Analytic gradients.
	layer.ZeroGrads()
	out := layer.Forward(agg, features)
	_, grad := MSELossGrad(out, target)
	layer.Backward(agg, grad)

	const eps = 1e-2
	for pi, p := range layer.Params() {
		gAnalytic := layer.Grads()[pi]
		// Check a handful of entries.
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			orig := p.Data[idx]
			p.Data[idx] = orig + eps
			lp := lossOf()
			p.Data[idx] = orig - eps
			lm := lossOf()
			p.Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(gAnalytic.Data[idx])
			if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s param %d idx %d: numeric %v analytic %v", kind, pi, idx, numeric, analytic)
			}
		}
	}
}

func TestGCNGradCheck(t *testing.T)     { numericalGradCheck(t, GCN) }
func TestCommNetGradCheck(t *testing.T) { numericalGradCheck(t, CommNet) }
func TestGINGradCheck(t *testing.T)     { numericalGradCheck(t, GIN) }

// numericalInputGradCheck verifies the gradient w.r.t. the input embeddings
// (the quantity that flows across GPUs in distributed backward passes).
func numericalInputGradCheck(t *testing.T, kind ModelKind) {
	t.Helper()
	g := graph.Ring(5)
	layer := kind.NewLayer(2, 3, 7)
	pushAwayFromKinks(layer)
	agg := NewAggregator(g, 5, kind.NeedsMeanAggregator())
	features := tensor.New(5, 2).FillRandom(3)
	target := tensor.New(5, 3).FillRandom(4)

	layer.ZeroGrads()
	out := layer.Forward(agg, features)
	_, grad := MSELossGrad(out, target)
	gradIn := layer.Backward(agg, grad)

	const eps = 1e-2
	for _, idx := range []int{0, 3, 9} {
		orig := features.Data[idx]
		features.Data[idx] = orig + eps
		lp, _ := MSELossGrad(layer.Forward(agg, features), target)
		features.Data[idx] = orig - eps
		lm, _ := MSELossGrad(layer.Forward(agg, features), target)
		features.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(gradIn.Data[idx])
		if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("%s input grad idx %d: numeric %v analytic %v", kind, idx, numeric, analytic)
		}
	}
}

func TestGCNInputGradCheck(t *testing.T)     { numericalInputGradCheck(t, GCN) }
func TestCommNetInputGradCheck(t *testing.T) { numericalInputGradCheck(t, CommNet) }
func TestGINInputGradCheck(t *testing.T)     { numericalInputGradCheck(t, GIN) }

func TestTrainingReducesLoss(t *testing.T) {
	for _, kind := range AllModels {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			g := graph.CommunityGraph(100, 8, 4, 0.8, 5)
			model := NewModel(kind, 8, 8, 2, 11)
			sd := NewSingleDevice(model, g, 13)
			features := tensor.New(g.NumVertices(), 8).FillRandom(17)
			first := sd.Epoch(features)
			model.Step(0.01)
			var last float64
			for i := 0; i < 20; i++ {
				last = sd.Epoch(features)
				model.Step(0.01)
			}
			if last >= first {
				t.Fatalf("%s loss did not decrease: %v -> %v", kind, first, last)
			}
		})
	}
}

func TestModelCloneIndependent(t *testing.T) {
	m := NewModel(GCN, 4, 4, 2, 1)
	c := m.Clone()
	m.Layers[0].Params()[0].Data[0] = 99
	if c.Layers[0].Params()[0].Data[0] == 99 {
		t.Fatal("clone shares weights")
	}
}

func TestStepZerosGrads(t *testing.T) {
	g := graph.Ring(6)
	m := NewModel(GCN, 3, 3, 1, 1)
	sd := NewSingleDevice(m, g, 2)
	features := tensor.New(6, 3).FillRandom(3)
	sd.Epoch(features)
	m.Step(0.1)
	for _, l := range m.Layers {
		for _, gr := range l.Grads() {
			if tensor.Frobenius(gr) != 0 {
				t.Fatal("grads not zeroed after Step")
			}
		}
	}
}

func TestFLOPsOrdering(t *testing.T) {
	// GCN < CommNet < GIN compute complexity (the paper's premise for the
	// model lineup).
	var flops [3]int64
	for i, kind := range AllModels {
		m := NewModel(kind, 128, 128, 2, 1)
		flops[i] = m.FLOPsPerEpoch(10000, 100000)
	}
	if !(flops[0] < flops[1] && flops[1] < flops[2]) {
		t.Fatalf("FLOPs ordering violated: %v", flops)
	}
}

func TestDeterministicForward(t *testing.T) {
	g := graph.Ring(10)
	run := func() float64 {
		m := NewModel(GIN, 4, 4, 2, 5)
		sd := NewSingleDevice(m, g, 6)
		f := tensor.New(10, 4).FillRandom(7)
		return sd.Epoch(f)
	}
	if run() != run() {
		t.Fatal("training not deterministic")
	}
}

func TestNewModelPanicsOnZeroLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(GCN, 4, 4, 0, 1)
}

func TestGINRejectsMeanAggregator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := graph.Ring(4)
	l := NewGINLayer(2, 2, 1)
	l.Forward(NewAggregator(g, 4, true), tensor.New(4, 2))
}
