package gnn

import (
	"math"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

func TestSampleBlockStructure(t *testing.T) {
	g := graph.Ring(12)
	s := NewNeighborSampler([]int{2, 2}, 1)
	seeds := []int32{0, 6}
	mb, err := s.Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.Blocks) != 2 {
		t.Fatalf("blocks=%d", len(mb.Blocks))
	}
	top := mb.Blocks[1]
	if top.NumDst != 2 || top.Srcs[0] != 0 || top.Srcs[1] != 6 {
		t.Fatalf("top block dsts wrong: %+v", top)
	}
	// Bottom block's destinations are exactly the top block's inputs.
	bottom := mb.Blocks[0]
	if bottom.NumDst != len(top.Srcs) {
		t.Fatalf("block chaining broken: %d vs %d", bottom.NumDst, len(top.Srcs))
	}
	for i := range top.Srcs {
		if bottom.Srcs[i] != top.Srcs[i] {
			t.Fatal("dst prefix mismatch")
		}
	}
	// Fan-out respected.
	for u := 0; u < top.NumDst; u++ {
		if top.G.Degree(int32(u)) > 2 {
			t.Fatalf("fanout exceeded: %d", top.G.Degree(int32(u)))
		}
	}
}

func TestSampleErrors(t *testing.T) {
	g := graph.Ring(4)
	if _, err := NewNeighborSampler([]int{2}, 1).Sample(g, nil); err == nil {
		t.Fatal("empty seeds must fail")
	}
	if _, err := NewNeighborSampler(nil, 1).Sample(g, []int32{0}); err == nil {
		t.Fatal("no fanouts must fail")
	}
}

func TestUnlimitedFanoutMatchesFullGraph(t *testing.T) {
	// With fan-out 0 (take all neighbors), the sampled forward must equal
	// the full-graph forward restricted to the seeds — sampling's bias comes
	// only from dropped neighbors.
	g := graph.CommunityGraph(80, 6, 3, 0.8, 3)
	m := NewModel(GCN, 5, 4, 2, 9)
	features := tensor.New(g.NumVertices(), 5).FillRandom(10)

	sd := NewSingleDevice(m.Clone(), g, 0)
	fullOut, _ := sd.Forward(features)

	seeds := []int32{0, 5, 17, 42}
	mb, err := NewNeighborSampler([]int{0, 0}, 1).Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MinibatchForward(m.Clone(), mb, features)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seeds {
		for j := 0; j < 4; j++ {
			if d := math.Abs(float64(out.At(i, j) - fullOut.At(int(v), j))); d > 1e-4 {
				t.Fatalf("seed %d col %d: sampled %v vs full %v", v, j, out.At(i, j), fullOut.At(int(v), j))
			}
		}
	}
}

func TestSampledForwardIsBiasedUnderTruncation(t *testing.T) {
	// With tiny fan-out the sampled estimate deviates from the full-graph
	// output on dense graphs — the accuracy-loss concern that makes the
	// paper choose full-graph training.
	g := graph.CommunityGraph(120, 16, 3, 0.8, 4)
	m := NewModel(GCN, 5, 4, 2, 9)
	features := tensor.New(g.NumVertices(), 5).FillRandom(10)
	sd := NewSingleDevice(m.Clone(), g, 0)
	fullOut, _ := sd.Forward(features)

	seeds := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	mb, err := NewNeighborSampler([]int{1, 1}, 2).Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MinibatchForward(m.Clone(), mb, features)
	if err != nil {
		t.Fatal(err)
	}
	var maxDev float64
	for i, v := range seeds {
		for j := 0; j < 4; j++ {
			if d := math.Abs(float64(out.At(i, j) - fullOut.At(int(v), j))); d > maxDev {
				maxDev = d
			}
		}
	}
	if maxDev < 1e-4 {
		t.Fatalf("fan-out-1 sampling should deviate from full aggregation, max dev %v", maxDev)
	}
}

func TestMinibatchTrainingReducesLoss(t *testing.T) {
	g := graph.CommunityGraph(100, 8, 4, 0.8, 5)
	m := NewModel(GCN, 6, 5, 2, 11)
	features := tensor.New(g.NumVertices(), 6).FillRandom(12)
	targets := tensor.New(g.NumVertices(), 5).FillRandom(13)
	sampler := NewNeighborSampler([]int{4, 4}, 14)
	seeds := make([]int32, 0, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		seeds = append(seeds, int32(v))
	}
	lossOf := func() float64 {
		mb, err := sampler.Sample(g, seeds)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := MinibatchEpoch(m, mb, features, targets)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	first := lossOf()
	m.Step(0.005)
	var last float64
	for i := 0; i < 20; i++ {
		last = lossOf()
		m.Step(0.005)
	}
	if last >= first {
		t.Fatalf("minibatch training did not progress: %v -> %v", first, last)
	}
}

func TestMinibatchLayerMismatch(t *testing.T) {
	g := graph.Ring(10)
	m := NewModel(GCN, 4, 4, 2, 1)
	mb, _ := NewNeighborSampler([]int{2}, 1).Sample(g, []int32{0})
	if _, err := MinibatchForward(m, mb, tensor.New(10, 4)); err == nil {
		t.Fatal("block/layer count mismatch must fail")
	}
}
