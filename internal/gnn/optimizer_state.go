package gnn

import (
	"encoding/binary"
	"fmt"
	"io"

	"dgcl/internal/tensor"
)

// Optimizer state serialization. SGD's velocity and Adam's moments are keyed
// by parameter pointer, so they cannot be serialized standalone; instead
// state is written and read against a Model, iterating its parameters in the
// deterministic layer/param order. A resumed run constructs the same
// optimizer (same flags), loads the state against the restored model, and
// continues bit-identically to an uninterrupted run.

// StatefulOptimizer is an Optimizer whose internal state (momentum,
// moments, step counters) can round-trip through a checkpoint.
type StatefulOptimizer interface {
	Optimizer
	// SaveState writes the optimizer's state for m's parameters.
	SaveState(w io.Writer, m *Model) error
	// LoadState restores state saved against a model of identical shape,
	// rebinding it to m's parameters.
	LoadState(r io.Reader, m *Model) error
}

// modelParams returns m's parameters in the canonical layer/param order the
// state format is defined over.
func modelParams(m *Model) []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// writeStateBuf writes one optional per-parameter state buffer: a presence
// byte, then the raw float32 data (shape is implied by the parameter).
func writeStateBuf(w io.Writer, buf *tensor.Matrix) error {
	if buf == nil {
		if err := binary.Write(w, binary.LittleEndian, uint8(0)); err != nil {
			return fmt.Errorf("gnn: write state presence: %w", err)
		}
		return nil
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil {
		return fmt.Errorf("gnn: write state presence: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, buf.Data); err != nil {
		return fmt.Errorf("gnn: write state buffer: %w", err)
	}
	return nil
}

// readStateBuf reads one optional state buffer shaped like p. The shape
// comes from the live model, never from the (untrusted) stream, so a corrupt
// stream cannot size an allocation.
func readStateBuf(r io.Reader, p *tensor.Matrix) (*tensor.Matrix, error) {
	var present uint8
	if err := binary.Read(r, binary.LittleEndian, &present); err != nil {
		return nil, fmt.Errorf("gnn: read state presence: %w", err)
	}
	switch present {
	case 0:
		return nil, nil
	case 1:
		buf := tensor.New(p.Rows, p.Cols)
		if err := binary.Read(r, binary.LittleEndian, buf.Data); err != nil {
			return nil, fmt.Errorf("gnn: read state buffer: %w", err)
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("gnn: corrupt state presence byte %d", present)
	}
}

// SaveState implements StatefulOptimizer: one velocity buffer per parameter
// (absent when momentum never accumulated for it).
func (o *SGD) SaveState(w io.Writer, m *Model) error {
	for _, p := range modelParams(m) {
		if err := writeStateBuf(w, o.velocity[p]); err != nil {
			return err
		}
	}
	return nil
}

// LoadState implements StatefulOptimizer.
func (o *SGD) LoadState(r io.Reader, m *Model) error {
	if o.velocity == nil {
		o.velocity = make(map[*tensor.Matrix]*tensor.Matrix)
	}
	for _, p := range modelParams(m) {
		buf, err := readStateBuf(r, p)
		if err != nil {
			return err
		}
		if buf != nil {
			o.velocity[p] = buf
		} else {
			delete(o.velocity, p)
		}
	}
	return nil
}

// SaveState implements StatefulOptimizer: the step counter (bias correction
// depends on it), then first and second moment buffers per parameter.
func (o *Adam) SaveState(w io.Writer, m *Model) error {
	if err := binary.Write(w, binary.LittleEndian, int64(o.step)); err != nil {
		return fmt.Errorf("gnn: write adam step: %w", err)
	}
	for _, p := range modelParams(m) {
		if err := writeStateBuf(w, o.m[p]); err != nil {
			return err
		}
		if err := writeStateBuf(w, o.v[p]); err != nil {
			return err
		}
	}
	return nil
}

// LoadState implements StatefulOptimizer.
func (o *Adam) LoadState(r io.Reader, m *Model) error {
	var step int64
	if err := binary.Read(r, binary.LittleEndian, &step); err != nil {
		return fmt.Errorf("gnn: read adam step: %w", err)
	}
	if step < 0 || step > 1<<40 {
		return fmt.Errorf("gnn: implausible adam step %d", step)
	}
	o.step = int(step)
	if o.m == nil {
		o.m = make(map[*tensor.Matrix]*tensor.Matrix)
	}
	if o.v == nil {
		o.v = make(map[*tensor.Matrix]*tensor.Matrix)
	}
	for _, p := range modelParams(m) {
		mb, err := readStateBuf(r, p)
		if err != nil {
			return err
		}
		vb, err := readStateBuf(r, p)
		if err != nil {
			return err
		}
		if (mb == nil) != (vb == nil) {
			return fmt.Errorf("gnn: adam state has mismatched moment presence")
		}
		if mb != nil {
			o.m[p], o.v[p] = mb, vb
		} else {
			delete(o.m, p)
			delete(o.v, p)
		}
	}
	return nil
}
