package gnn

import (
	"strings"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

// trainWith runs epochs with the given optimizer and returns the final
// loss.
func trainWith(t *testing.T, opt Optimizer, epochs int) float64 {
	t.Helper()
	g := graph.CommunityGraph(100, 8, 4, 0.8, 5)
	model := NewModel(GCN, 8, 8, 2, 11)
	sd := NewSingleDevice(model, g, 13)
	features := tensor.New(g.NumVertices(), 8).FillRandom(17)
	var loss float64
	for i := 0; i < epochs; i++ {
		loss = sd.Epoch(features)
		opt.Step(model)
	}
	return loss
}

func TestSGDMatchesModelStep(t *testing.T) {
	// SGD without momentum must equal Model.Step exactly.
	g := graph.Ring(20)
	mkLoss := func(useOpt bool) float64 {
		model := NewModel(GCN, 4, 4, 2, 7)
		sd := NewSingleDevice(model, g, 8)
		features := tensor.New(20, 4).FillRandom(9)
		var loss float64
		opt := NewSGD(0.01, 0)
		for i := 0; i < 5; i++ {
			loss = sd.Epoch(features)
			if useOpt {
				opt.Step(model)
			} else {
				model.Step(0.01)
			}
		}
		return loss
	}
	if a, b := mkLoss(true), mkLoss(false); a != b {
		t.Fatalf("SGD optimizer %v != Model.Step %v", a, b)
	}
}

func TestMomentumAcceleratesDescent(t *testing.T) {
	plain := trainWith(t, NewSGD(0.002, 0), 25)
	momentum := trainWith(t, NewSGD(0.002, 0.9), 25)
	if momentum >= plain {
		t.Fatalf("momentum (%v) should beat plain SGD (%v) on this fixture", momentum, plain)
	}
}

func TestAdamConverges(t *testing.T) {
	// Much of the random-target MSE is irreducible; Adam must make steady
	// progress on the reducible part.
	start := trainWith(t, NewAdam(0.005), 1)
	end := trainWith(t, NewAdam(0.005), 40)
	if end >= start {
		t.Fatalf("Adam did not converge: %v -> %v", start, end)
	}
}

func TestOptimizersZeroGrads(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1, 0.5), NewAdam(0.01)} {
		g := graph.Ring(10)
		model := NewModel(GCN, 3, 3, 1, 1)
		sd := NewSingleDevice(model, g, 2)
		sd.Epoch(tensor.New(10, 3).FillRandom(3))
		opt.Step(model)
		for _, l := range model.Layers {
			for _, gr := range l.Grads() {
				if tensor.Frobenius(gr) != 0 {
					t.Fatalf("%s left grads dirty", opt.Name())
				}
			}
		}
	}
}

func TestOptimizerNames(t *testing.T) {
	if !strings.HasPrefix(NewSGD(0.1, 0).Name(), "sgd") {
		t.Fatal("bad sgd name")
	}
	if !strings.HasPrefix(NewAdam(0.1).Name(), "adam") {
		t.Fatal("bad adam name")
	}
}
