package gnn

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// Optimizer-state round-trip: an optimizer restored from a checkpoint must
// continue bit-identically to one that never stopped — momentum velocity,
// Adam moments, and the Adam step counter (bias correction depends on it)
// all have to survive the trip.

// fillGrads writes deterministic pseudo-gradients for step k into m.
func fillGrads(m *Model, k int64) {
	for li, l := range m.Layers {
		for gi, g := range l.Grads() {
			g.FillRandom(1000*k + int64(10*li+gi))
		}
	}
}

func paramsBitIdentical(t *testing.T, a, b *Model, label string) {
	t.Helper()
	for li := range a.Layers {
		ap, bp := a.Layers[li].Params(), b.Layers[li].Params()
		for pi := range ap {
			for j := range ap[pi].Data {
				if ap[pi].Data[j] != bp[pi].Data[j] {
					t.Fatalf("%s: layer %d param %d element %d: %v != %v",
						label, li, pi, j, ap[pi].Data[j], bp[pi].Data[j])
				}
			}
		}
	}
}

func TestOptimizerStateRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		mk   func() StatefulOptimizer
	}{
		{"sgd-momentum", func() StatefulOptimizer { return NewSGD(0.05, 0.9) }},
		{"sgd-plain", func() StatefulOptimizer { return NewSGD(0.05, 0) }},
		{"adam", func() StatefulOptimizer { return NewAdam(0.01) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			straight := NewModel(GCN, 6, 5, 2, 3)
			optA := tc.mk()
			for k := 0; k < 5; k++ {
				fillGrads(straight, int64(k))
				optA.Step(straight)
			}

			// Same run, interrupted after step 2: model and optimizer state go
			// through the checkpoint encoding and back.
			interrupted := NewModel(GCN, 6, 5, 2, 3)
			optB := tc.mk()
			for k := 0; k < 3; k++ {
				fillGrads(interrupted, int64(k))
				optB.Step(interrupted)
			}
			var modelBuf, stateBuf bytes.Buffer
			if err := interrupted.Save(&modelBuf); err != nil {
				t.Fatal(err)
			}
			if err := optB.SaveState(&stateBuf, interrupted); err != nil {
				t.Fatal(err)
			}
			restored, err := Load(&modelBuf)
			if err != nil {
				t.Fatal(err)
			}
			optC := tc.mk()
			if err := optC.LoadState(bytes.NewReader(stateBuf.Bytes()), restored); err != nil {
				t.Fatal(err)
			}
			for k := 3; k < 5; k++ {
				fillGrads(restored, int64(k))
				optC.Step(restored)
			}
			paramsBitIdentical(t, straight, restored, tc.name)
		})
	}
}

func TestOptimizerLoadStateRejectsCorruptStreams(t *testing.T) {
	m := NewModel(GCN, 4, 3, 1, 1)
	adam := NewAdam(0.01)
	if err := adam.LoadState(strings.NewReader(""), m); err == nil {
		t.Fatal("empty stream accepted as adam state")
	}
	var neg bytes.Buffer
	binary.Write(&neg, binary.LittleEndian, int64(-1))
	if err := NewAdam(0.01).LoadState(&neg, m); err == nil {
		t.Fatal("negative adam step accepted")
	}
	var badPresence bytes.Buffer
	binary.Write(&badPresence, binary.LittleEndian, int64(1))
	badPresence.WriteByte(7) // presence byte must be 0 or 1
	if err := NewAdam(0.01).LoadState(&badPresence, m); err == nil {
		t.Fatal("corrupt presence byte accepted")
	}
	if err := NewSGD(0.1, 0.9).LoadState(strings.NewReader("\x01"), m); err == nil {
		t.Fatal("truncated sgd velocity accepted")
	}
}

func TestLoadBoundsAllocationsBeforeAllocating(t *testing.T) {
	// Each dim passes the per-dimension bound but their product exceeds the
	// per-layer element bound: Load must reject from the header alone,
	// without materializing the layer.
	var buf bytes.Buffer
	buf.WriteString("DGCLCKPT")
	binary.Write(&buf, binary.LittleEndian, int32(3))
	buf.WriteString("GCN")
	binary.Write(&buf, binary.LittleEndian, int32(1))                   // layer count
	binary.Write(&buf, binary.LittleEndian, [2]int32{1 << 15, 1 << 15}) // 2^30 elems
	if _, err := Load(&buf); err == nil {
		t.Fatal("oversized dims product accepted")
	}

	// A single dim over maxDim fails too.
	buf.Reset()
	buf.WriteString("DGCLCKPT")
	binary.Write(&buf, binary.LittleEndian, int32(3))
	buf.WriteString("GCN")
	binary.Write(&buf, binary.LittleEndian, int32(1))
	binary.Write(&buf, binary.LittleEndian, [2]int32{maxDim + 1, 1})
	if _, err := Load(&buf); err == nil {
		t.Fatal("dim over maxDim accepted")
	}

	// Truncation inside the parameter data is a wrapped error, not a panic.
	m := NewModel(GCN, 4, 3, 2, 9)
	var full bytes.Buffer
	if err := m.Save(&full); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{9, 15, full.Len() - 3} {
		if _, err := Load(bytes.NewReader(full.Bytes()[:cut])); err == nil {
			t.Fatalf("checkpoint truncated at %d accepted", cut)
		}
	}
}
