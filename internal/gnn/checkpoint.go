package gnn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Model checkpointing: a compact binary format (magic, kind, layer dims,
// then raw float32 parameters in layer/param order) so long trainings can
// resume and trained models can ship. Replica determinism makes one
// checkpoint valid for every GPU.

const checkpointMagic = "DGCLCKPT"

// Decoder bounds: a checkpoint header is untrusted input (truncated or
// bit-flipped files reach Load via checkpoint-store fallback), so every
// count is bounded before it sizes an allocation.
const (
	maxLayers     = 256
	maxDim        = 1 << 20
	maxLayerElems = 1 << 24 // per-layer parameter elements (64 MiB of float32)
	maxModelElems = 1 << 26 // whole-model parameter elements (256 MiB)
)

// Save writes the model's weights.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	}
	if err := writeStr(string(m.Kind)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int32(len(m.Layers))); err != nil {
		return err
	}
	for _, l := range m.Layers {
		if err := binary.Write(w, binary.LittleEndian, [2]int32{int32(l.InDim()), int32(l.OutDim())}); err != nil {
			return err
		}
		for _, p := range l.Params() {
			if err := binary.Write(w, binary.LittleEndian, [2]int32{int32(p.Rows), int32(p.Cols)}); err != nil {
				return err
			}
			for _, v := range p.Data {
				if err := binary.Write(w, binary.LittleEndian, math.Float32bits(v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Load reads a checkpoint and reconstructs the model (weights exactly as
// saved, gradients zeroed).
func Load(r io.Reader) (*Model, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("gnn: read magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("gnn: not a DGCL checkpoint (magic %q)", magic)
	}
	readStr := func() (string, error) {
		var n int32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n < 0 || n > 1024 {
			return "", fmt.Errorf("gnn: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	kindStr, err := readStr()
	if err != nil {
		return nil, fmt.Errorf("gnn: read kind: %w", err)
	}
	kind := ModelKind(kindStr)
	switch kind {
	case GCN, CommNet, GIN, GraphSAGE, GAT:
	default:
		return nil, fmt.Errorf("gnn: unknown model kind %q in checkpoint", kindStr)
	}
	var numLayers int32
	if err := binary.Read(r, binary.LittleEndian, &numLayers); err != nil {
		return nil, fmt.Errorf("gnn: read layer count: %w", err)
	}
	if numLayers < 1 || numLayers > maxLayers {
		return nil, fmt.Errorf("gnn: implausible layer count %d", numLayers)
	}
	m := &Model{Kind: kind}
	var totalElems int64
	for li := int32(0); li < numLayers; li++ {
		var dims [2]int32
		if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
			return nil, fmt.Errorf("gnn: layer %d: read dims: %w", li, err)
		}
		if dims[0] < 1 || dims[1] < 1 || dims[0] > maxDim || dims[1] > maxDim {
			return nil, fmt.Errorf("gnn: layer %d: implausible dims %v", li, dims)
		}
		// Bound the allocation BEFORE NewLayer materializes the parameters: a
		// corrupt header must not turn into an attacker-controlled allocation.
		if int64(dims[0])*int64(dims[1]) > maxLayerElems {
			return nil, fmt.Errorf("gnn: layer %d: %dx%d exceeds %d parameters", li, dims[0], dims[1], maxLayerElems)
		}
		layer := kind.NewLayer(int(dims[0]), int(dims[1]), 0)
		for pi, p := range layer.Params() {
			totalElems += int64(p.Rows) * int64(p.Cols)
			if totalElems > maxModelElems {
				return nil, fmt.Errorf("gnn: checkpoint exceeds %d total parameters", int64(maxModelElems))
			}
			var shape [2]int32
			if err := binary.Read(r, binary.LittleEndian, &shape); err != nil {
				return nil, fmt.Errorf("gnn: layer %d param %d: read shape: %w", li, pi, err)
			}
			if int(shape[0]) != p.Rows || int(shape[1]) != p.Cols {
				return nil, fmt.Errorf("gnn: layer %d param %d shape %v, expected %dx%d", li, pi, shape, p.Rows, p.Cols)
			}
			// float32 little-endian matches the Float32bits encoding Save
			// produces; reading the slice in one call avoids 4-byte reads.
			if err := binary.Read(r, binary.LittleEndian, p.Data); err != nil {
				return nil, fmt.Errorf("gnn: layer %d param %d: read data: %w", li, pi, err)
			}
		}
		m.Layers = append(m.Layers, layer)
	}
	return m, nil
}
