package gnn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Model checkpointing: a compact binary format (magic, kind, layer dims,
// then raw float32 parameters in layer/param order) so long trainings can
// resume and trained models can ship. Replica determinism makes one
// checkpoint valid for every GPU.

const checkpointMagic = "DGCLCKPT"

// Save writes the model's weights.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	}
	if err := writeStr(string(m.Kind)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int32(len(m.Layers))); err != nil {
		return err
	}
	for _, l := range m.Layers {
		if err := binary.Write(w, binary.LittleEndian, [2]int32{int32(l.InDim()), int32(l.OutDim())}); err != nil {
			return err
		}
		for _, p := range l.Params() {
			if err := binary.Write(w, binary.LittleEndian, [2]int32{int32(p.Rows), int32(p.Cols)}); err != nil {
				return err
			}
			for _, v := range p.Data {
				if err := binary.Write(w, binary.LittleEndian, math.Float32bits(v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Load reads a checkpoint and reconstructs the model (weights exactly as
// saved, gradients zeroed).
func Load(r io.Reader) (*Model, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("gnn: read magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("gnn: not a DGCL checkpoint (magic %q)", magic)
	}
	readStr := func() (string, error) {
		var n int32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n < 0 || n > 1024 {
			return "", fmt.Errorf("gnn: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	kindStr, err := readStr()
	if err != nil {
		return nil, fmt.Errorf("gnn: read kind: %w", err)
	}
	kind := ModelKind(kindStr)
	switch kind {
	case GCN, CommNet, GIN, GraphSAGE, GAT:
	default:
		return nil, fmt.Errorf("gnn: unknown model kind %q in checkpoint", kindStr)
	}
	var numLayers int32
	if err := binary.Read(r, binary.LittleEndian, &numLayers); err != nil {
		return nil, err
	}
	if numLayers < 1 || numLayers > 256 {
		return nil, fmt.Errorf("gnn: implausible layer count %d", numLayers)
	}
	m := &Model{Kind: kind}
	for li := int32(0); li < numLayers; li++ {
		var dims [2]int32
		if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
			return nil, err
		}
		if dims[0] < 1 || dims[1] < 1 || dims[0] > 1<<20 || dims[1] > 1<<20 {
			return nil, fmt.Errorf("gnn: implausible layer dims %v", dims)
		}
		layer := kind.NewLayer(int(dims[0]), int(dims[1]), 0)
		for _, p := range layer.Params() {
			var shape [2]int32
			if err := binary.Read(r, binary.LittleEndian, &shape); err != nil {
				return nil, err
			}
			if int(shape[0]) != p.Rows || int(shape[1]) != p.Cols {
				return nil, fmt.Errorf("gnn: layer %d param shape %v, expected %dx%d", li, shape, p.Rows, p.Cols)
			}
			for j := range p.Data {
				var bits uint32
				if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
					return nil, err
				}
				p.Data[j] = math.Float32frombits(bits)
			}
		}
		m.Layers = append(m.Layers, layer)
	}
	return m, nil
}
