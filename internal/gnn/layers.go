package gnn

import (
	"fmt"

	"dgcl/internal/tensor"
)

// Layer is one graph propagation layer following the aggregate-update
// pattern of Equation 1. Forward consumes the embeddings of all input
// vertices (local + remote) and produces embeddings for the first
// agg.NumOut (local) vertices, so the dense update never touches remote
// rows (§6.3). Backward consumes the gradient of the layer output and
// returns the gradient with respect to every input row, remote rows
// included, accumulating parameter gradients internally.
type Layer interface {
	InDim() int
	OutDim() int
	Forward(agg *Aggregator, h *tensor.Matrix) *tensor.Matrix
	Backward(agg *Aggregator, gradOut *tensor.Matrix) *tensor.Matrix
	Params() []*tensor.Matrix
	Grads() []*tensor.Matrix
	ZeroGrads()
	// FLOPs estimates the forward floating point work for the given local
	// vertex count and edge count (backward is ~2x); package device turns it
	// into simulated time.
	FLOPs(vertices, edges int64) int64
	// SparseFLOPs is the aggregation (SpMM-like) portion of FLOPs; the rest
	// is dense GEMM work. The two run at very different effective
	// throughputs on a GPU.
	SparseFLOPs(edges int64) int64
	// CacheFloatsPerVertex is the number of float32 activations the layer
	// keeps per vertex between forward and backward; it drives the OOM
	// accounting of package device.
	CacheFloatsPerVertex() int64
}

// ParamsOnlyBackward is implemented by layers that can accumulate their
// parameter gradients without materializing the gradient with respect to
// their input. The trainer discards the input gradient of layer 0 (features
// are not trained, so no backward allgather follows), and for the paper's
// models that gradient is the most expensive part of the backward pass — a
// dense a×bᵀ matmul plus the aggregator's per-edge scatter. BackwardParams
// performs exactly Backward's parameter-gradient updates, in the same order,
// and skips only the input-gradient computation, so allreduced weight
// gradients are bit-identical either way.
type ParamsOnlyBackward interface {
	BackwardParams(agg *Aggregator, gradOut *tensor.Matrix)
}

// selfRows returns the first n rows of h as a view-backed matrix copy.
func selfRows(h *tensor.Matrix, n int) *tensor.Matrix {
	return tensor.FromData(n, h.Cols, h.Data[:n*h.Cols])
}

// GCNLayer implements graph convolution: out = ReLU(mean(N(u)) · W + b).
type GCNLayer struct {
	W, B   *tensor.Matrix
	gW, gB *tensor.Matrix
	// caches from forward for backward
	aggOut, pre *tensor.Matrix
}

// NewGCNLayer builds a GCN layer with Xavier-initialized weights.
func NewGCNLayer(in, out int, seed int64) *GCNLayer {
	return &GCNLayer{
		W: tensor.New(in, out).Xavier(seed), B: tensor.New(1, out),
		gW: tensor.New(in, out), gB: tensor.New(1, out),
	}
}

func (l *GCNLayer) InDim() int  { return l.W.Rows }
func (l *GCNLayer) OutDim() int { return l.W.Cols }

func (l *GCNLayer) Forward(agg *Aggregator, h *tensor.Matrix) *tensor.Matrix {
	l.aggOut = agg.Forward(h)
	l.pre = tensor.MatMul(l.aggOut, l.W)
	tensor.AddBiasInPlace(l.pre, l.B)
	return tensor.ReLU(l.pre)
}

func (l *GCNLayer) Backward(agg *Aggregator, gradOut *tensor.Matrix) *tensor.Matrix {
	gradPre := tensor.ReLUGrad(l.pre, gradOut)
	tensor.AddInPlace(l.gW, tensor.MatMulATB(l.aggOut, gradPre))
	tensor.AddInPlace(l.gB, tensor.BiasGrad(gradPre))
	gradAgg := tensor.MatMulABT(gradPre, l.W)
	return agg.Backward(gradAgg)
}

// BackwardParams is Backward minus the discarded input gradient (see
// ParamsOnlyBackward).
func (l *GCNLayer) BackwardParams(agg *Aggregator, gradOut *tensor.Matrix) {
	gradPre := tensor.ReLUGrad(l.pre, gradOut)
	tensor.AddInPlace(l.gW, tensor.MatMulATB(l.aggOut, gradPre))
	tensor.AddInPlace(l.gB, tensor.BiasGrad(gradPre))
}

func (l *GCNLayer) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.B} }
func (l *GCNLayer) Grads() []*tensor.Matrix  { return []*tensor.Matrix{l.gW, l.gB} }
func (l *GCNLayer) ZeroGrads()               { l.gW.Zero(); l.gB.Zero() }

func (l *GCNLayer) FLOPs(vertices, edges int64) int64 {
	return 2*edges*int64(l.InDim()) + 2*vertices*int64(l.InDim())*int64(l.OutDim())
}

// CommNetLayer implements the CommNet update: out = ReLU(h_u·Wself +
// mean(N(u))·Wcomm + b). It has roughly twice the dense compute of GCN.
type CommNetLayer struct {
	Wself, Wcomm, B    *tensor.Matrix
	gWself, gWcomm, gB *tensor.Matrix
	self, aggOut, pre  *tensor.Matrix
}

// NewCommNetLayer builds a CommNet layer.
func NewCommNetLayer(in, out int, seed int64) *CommNetLayer {
	return &CommNetLayer{
		Wself: tensor.New(in, out).Xavier(seed), Wcomm: tensor.New(in, out).Xavier(seed + 1),
		B:      tensor.New(1, out),
		gWself: tensor.New(in, out), gWcomm: tensor.New(in, out), gB: tensor.New(1, out),
	}
}

func (l *CommNetLayer) InDim() int  { return l.Wself.Rows }
func (l *CommNetLayer) OutDim() int { return l.Wself.Cols }

func (l *CommNetLayer) Forward(agg *Aggregator, h *tensor.Matrix) *tensor.Matrix {
	l.self = selfRows(h, agg.NumOut).Clone()
	l.aggOut = agg.Forward(h)
	l.pre = tensor.MatMul(l.self, l.Wself)
	tensor.AddInPlace(l.pre, tensor.MatMul(l.aggOut, l.Wcomm))
	tensor.AddBiasInPlace(l.pre, l.B)
	return tensor.ReLU(l.pre)
}

func (l *CommNetLayer) Backward(agg *Aggregator, gradOut *tensor.Matrix) *tensor.Matrix {
	gradPre := tensor.ReLUGrad(l.pre, gradOut)
	tensor.AddInPlace(l.gWself, tensor.MatMulATB(l.self, gradPre))
	tensor.AddInPlace(l.gWcomm, tensor.MatMulATB(l.aggOut, gradPre))
	tensor.AddInPlace(l.gB, tensor.BiasGrad(gradPre))
	gradSelf := tensor.MatMulABT(gradPre, l.Wself)
	gradAgg := tensor.MatMulABT(gradPre, l.Wcomm)
	gradIn := agg.Backward(gradAgg)
	// Self path contributes only to local rows.
	tensor.AddInPlace(selfRows(gradIn, agg.NumOut), gradSelf)
	return gradIn
}

// BackwardParams is Backward minus the discarded input gradient (see
// ParamsOnlyBackward).
func (l *CommNetLayer) BackwardParams(agg *Aggregator, gradOut *tensor.Matrix) {
	gradPre := tensor.ReLUGrad(l.pre, gradOut)
	tensor.AddInPlace(l.gWself, tensor.MatMulATB(l.self, gradPre))
	tensor.AddInPlace(l.gWcomm, tensor.MatMulATB(l.aggOut, gradPre))
	tensor.AddInPlace(l.gB, tensor.BiasGrad(gradPre))
}

func (l *CommNetLayer) Params() []*tensor.Matrix {
	return []*tensor.Matrix{l.Wself, l.Wcomm, l.B}
}
func (l *CommNetLayer) Grads() []*tensor.Matrix {
	return []*tensor.Matrix{l.gWself, l.gWcomm, l.gB}
}
func (l *CommNetLayer) ZeroGrads() { l.gWself.Zero(); l.gWcomm.Zero(); l.gB.Zero() }

func (l *CommNetLayer) FLOPs(vertices, edges int64) int64 {
	return 2*edges*int64(l.InDim()) + 4*vertices*int64(l.InDim())*int64(l.OutDim())
}

// GINLayer implements the GIN update with a two-layer MLP:
// out = ReLU(MLP((1+eps)·h_u + Σ_{v∈N(u)} h_v)) where
// MLP(x) = ReLU(x·W1 + b1)·W2 + b2. It is the most compute-heavy of the
// three models (two dense layers per propagation).
type GINLayer struct {
	Eps                     float32
	W1, B1, W2, B2          *tensor.Matrix
	gW1, gB1, gW2, gB2      *tensor.Matrix
	sum, pre1, hidden, pre2 *tensor.Matrix
}

// NewGINLayer builds a GIN layer whose MLP hidden width is twice the output
// width (making GIN the most compute-heavy model, as in the paper's lineup).
func NewGINLayer(in, out int, seed int64) *GINLayer {
	hidden := 2 * out
	return &GINLayer{
		Eps: 0.1,
		W1:  tensor.New(in, hidden).Xavier(seed), B1: tensor.New(1, hidden),
		W2: tensor.New(hidden, out).Xavier(seed + 1), B2: tensor.New(1, out),
		gW1: tensor.New(in, hidden), gB1: tensor.New(1, hidden),
		gW2: tensor.New(hidden, out), gB2: tensor.New(1, out),
	}
}

func (l *GINLayer) InDim() int  { return l.W1.Rows }
func (l *GINLayer) OutDim() int { return l.W2.Cols }

func (l *GINLayer) Forward(agg *Aggregator, h *tensor.Matrix) *tensor.Matrix {
	if agg.Mean {
		panic("gnn: GIN requires a sum aggregator")
	}
	l.sum = agg.Forward(h)
	self := selfRows(h, agg.NumOut)
	for i := 0; i < agg.NumOut; i++ {
		srow, hrow := l.sum.Row(i), self.Row(i)
		for j := range srow {
			srow[j] += (1 + l.Eps) * hrow[j]
		}
	}
	l.pre1 = tensor.MatMul(l.sum, l.W1)
	tensor.AddBiasInPlace(l.pre1, l.B1)
	l.hidden = tensor.ReLU(l.pre1)
	l.pre2 = tensor.MatMul(l.hidden, l.W2)
	tensor.AddBiasInPlace(l.pre2, l.B2)
	return tensor.ReLU(l.pre2)
}

func (l *GINLayer) Backward(agg *Aggregator, gradOut *tensor.Matrix) *tensor.Matrix {
	gradPre2 := tensor.ReLUGrad(l.pre2, gradOut)
	tensor.AddInPlace(l.gW2, tensor.MatMulATB(l.hidden, gradPre2))
	tensor.AddInPlace(l.gB2, tensor.BiasGrad(gradPre2))
	gradHidden := tensor.MatMulABT(gradPre2, l.W2)
	gradPre1 := tensor.ReLUGrad(l.pre1, gradHidden)
	tensor.AddInPlace(l.gW1, tensor.MatMulATB(l.sum, gradPre1))
	tensor.AddInPlace(l.gB1, tensor.BiasGrad(gradPre1))
	gradSum := tensor.MatMulABT(gradPre1, l.W1)
	gradIn := agg.Backward(gradSum)
	// (1+eps) self contribution.
	for i := 0; i < agg.NumOut; i++ {
		grow, srow := gradIn.Row(i), gradSum.Row(i)
		for j := range srow {
			grow[j] += (1 + l.Eps) * srow[j]
		}
	}
	return gradIn
}

// BackwardParams is Backward minus the discarded input gradient (see
// ParamsOnlyBackward). The hidden-layer gradient chain through the MLP is
// still required for gW1; only the propagation back through the aggregation
// (gradSum, the scatter, and the self contribution) is skipped.
func (l *GINLayer) BackwardParams(agg *Aggregator, gradOut *tensor.Matrix) {
	gradPre2 := tensor.ReLUGrad(l.pre2, gradOut)
	tensor.AddInPlace(l.gW2, tensor.MatMulATB(l.hidden, gradPre2))
	tensor.AddInPlace(l.gB2, tensor.BiasGrad(gradPre2))
	gradHidden := tensor.MatMulABT(gradPre2, l.W2)
	gradPre1 := tensor.ReLUGrad(l.pre1, gradHidden)
	tensor.AddInPlace(l.gW1, tensor.MatMulATB(l.sum, gradPre1))
	tensor.AddInPlace(l.gB1, tensor.BiasGrad(gradPre1))
}

func (l *GINLayer) Params() []*tensor.Matrix {
	return []*tensor.Matrix{l.W1, l.B1, l.W2, l.B2}
}
func (l *GINLayer) Grads() []*tensor.Matrix {
	return []*tensor.Matrix{l.gW1, l.gB1, l.gW2, l.gB2}
}
func (l *GINLayer) ZeroGrads() { l.gW1.Zero(); l.gB1.Zero(); l.gW2.Zero(); l.gB2.Zero() }

func (l *GINLayer) FLOPs(vertices, edges int64) int64 {
	in, hidden, out := int64(l.InDim()), int64(l.W1.Cols), int64(l.OutDim())
	return 2*edges*in + 2*vertices*in*hidden + 2*vertices*hidden*out
}

// ModelKind names one of the paper's three GNN models.
type ModelKind string

// The three models of §7, plus GraphSAGE (mentioned in the paper's
// introduction; implemented with the max-pool aggregator as an extension).
const (
	GCN       ModelKind = "GCN"
	CommNet   ModelKind = "CommNet"
	GIN       ModelKind = "GIN"
	GraphSAGE ModelKind = "GraphSAGE"
	GAT       ModelKind = "GAT"
)

// AllModels lists the paper's evaluated models in evaluation order
// (GraphSAGE is an extension and not part of the §7 sweeps).
var AllModels = []ModelKind{GCN, CommNet, GIN}

// NeedsMeanAggregator reports whether the model aggregates with mean (GCN,
// CommNet). GIN uses sum; GraphSAGE does its own max-pooling but receives a
// sum aggregator for degree bookkeeping.
func (k ModelKind) NeedsMeanAggregator() bool { return k == GCN || k == CommNet }

// NewLayer constructs one layer of the given kind.
func (k ModelKind) NewLayer(in, out int, seed int64) Layer {
	switch k {
	case GCN:
		return NewGCNLayer(in, out, seed)
	case CommNet:
		return NewCommNetLayer(in, out, seed)
	case GIN:
		return NewGINLayer(in, out, seed)
	case GraphSAGE:
		return NewSAGELayer(in, out, seed)
	case GAT:
		return NewGATLayer(in, out, seed)
	}
	panic(fmt.Sprintf("gnn: unknown model kind %q", k))
}

// SparseFLOPs implementations: the aggregation touches every edge once with
// the layer's input width.

func (l *GCNLayer) SparseFLOPs(edges int64) int64     { return 2 * edges * int64(l.InDim()) }
func (l *CommNetLayer) SparseFLOPs(edges int64) int64 { return 2 * edges * int64(l.InDim()) }
func (l *GINLayer) SparseFLOPs(edges int64) int64     { return 2 * edges * int64(l.InDim()) }

// CacheFloatsPerVertex implementations: the forward tensors each layer keeps
// alive for its backward pass.

func (l *GCNLayer) CacheFloatsPerVertex() int64 {
	return int64(l.InDim() + l.OutDim()) // aggOut + pre
}

func (l *CommNetLayer) CacheFloatsPerVertex() int64 {
	return int64(2*l.InDim() + l.OutDim()) // self + aggOut + pre
}

func (l *GINLayer) CacheFloatsPerVertex() int64 {
	hidden := l.W1.Cols
	return int64(l.InDim() + 2*hidden + l.OutDim()) // sum + pre1 + hidden + pre2
}
