// Package gnn implements the GNN substrate of the reproduction: the
// aggregate-update layers of §2 (GCN, CommNet and GIN — the paper's three
// evaluation models) with full forward and backward passes, the loss, and a
// single-device trainer that distributed training must match bit-for-bit up
// to floating-point reassociation.
package gnn

import (
	"fmt"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

// Aggregator computes the neighborhood aggregation a_u = Σ_{v∈N(u)} w_u · h_v
// over a graph. For distributed training the graph is a re-indexed local
// graph whose input rows cover local + remote vertices while only the first
// NumOut (local) rows are produced; for single-device training NumOut equals
// the vertex count. Degrees are taken from the graph itself, which for local
// graphs equal the global degrees (package comm preserves them).
type Aggregator struct {
	G      *graph.Graph
	NumOut int
	// Mean selects mean aggregation (1/deg weighting) instead of sum.
	Mean bool
}

// NewAggregator builds an aggregator producing rows for the first numOut
// vertices of g.
func NewAggregator(g *graph.Graph, numOut int, mean bool) *Aggregator {
	if numOut > g.NumVertices() {
		panic(fmt.Sprintf("gnn: numOut %d exceeds graph size %d", numOut, g.NumVertices()))
	}
	return &Aggregator{G: g, NumOut: numOut, Mean: mean}
}

func (a *Aggregator) weight(u int32) float32 {
	if !a.Mean {
		return 1
	}
	d := a.G.Degree(u)
	if d == 0 {
		return 0
	}
	return 1 / float32(d)
}

// Forward aggregates h (|V|×f) into a NumOut×f matrix.
func (a *Aggregator) Forward(h *tensor.Matrix) *tensor.Matrix {
	if h.Rows != a.G.NumVertices() {
		panic(fmt.Sprintf("gnn: aggregate input %d rows for graph with %d vertices", h.Rows, a.G.NumVertices()))
	}
	out := tensor.New(a.NumOut, h.Cols)
	for u := 0; u < a.NumOut; u++ {
		w := a.weight(int32(u))
		if w == 0 {
			continue
		}
		orow := out.Row(u)
		for _, v := range a.G.Neighbors(int32(u)) {
			hrow := h.Row(int(v))
			for j, x := range hrow {
				orow[j] += w * x
			}
		}
	}
	return out
}

// Backward distributes grad (NumOut×f) back to the input rows: the gradient
// for input row v accumulates w_u · grad_u over every u with v ∈ N(u). The
// result has one row per graph vertex (local + remote for local graphs); the
// remote rows are the gradients distributed training must ship back to the
// owning GPUs.
func (a *Aggregator) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if grad.Rows != a.NumOut {
		panic(fmt.Sprintf("gnn: aggregate grad %d rows, want %d", grad.Rows, a.NumOut))
	}
	out := tensor.New(a.G.NumVertices(), grad.Cols)
	for u := 0; u < a.NumOut; u++ {
		w := a.weight(int32(u))
		if w == 0 {
			continue
		}
		grow := grad.Row(u)
		for _, v := range a.G.Neighbors(int32(u)) {
			orow := out.Row(int(v))
			for j, x := range grow {
				orow[j] += w * x
			}
		}
	}
	return out
}
