// Package gnn implements the GNN substrate of the reproduction: the
// aggregate-update layers of §2 (GCN, CommNet and GIN — the paper's three
// evaluation models) with full forward and backward passes, the loss, and a
// single-device trainer that distributed training must match bit-for-bit up
// to floating-point reassociation.
package gnn

import (
	"fmt"

	"dgcl/internal/graph"
	"dgcl/internal/tensor"
)

// Aggregator computes the neighborhood aggregation a_u = Σ_{v∈N(u)} w_u · h_v
// over a graph. For distributed training the graph is a re-indexed local
// graph whose input rows cover local + remote vertices while only the first
// NumOut (local) rows are produced; for single-device training NumOut equals
// the vertex count. Degrees are taken from the graph itself, which for local
// graphs equal the global degrees (package comm preserves them).
type Aggregator struct {
	G      *graph.Graph
	NumOut int
	// Mean selects mean aggregation (1/deg weighting) instead of sum.
	Mean bool
}

// NewAggregator builds an aggregator producing rows for the first numOut
// vertices of g.
func NewAggregator(g *graph.Graph, numOut int, mean bool) *Aggregator {
	if numOut > g.NumVertices() {
		panic(fmt.Sprintf("gnn: numOut %d exceeds graph size %d", numOut, g.NumVertices()))
	}
	return &Aggregator{G: g, NumOut: numOut, Mean: mean}
}

func (a *Aggregator) weight(u int32) float32 {
	if !a.Mean {
		return 1
	}
	d := a.G.Degree(u)
	if d == 0 {
		return 0
	}
	return 1 / float32(d)
}

// Forward aggregates h (|V|×f) into a NumOut×f matrix.
func (a *Aggregator) Forward(h *tensor.Matrix) *tensor.Matrix {
	if h.Rows != a.G.NumVertices() {
		panic(fmt.Sprintf("gnn: aggregate input %d rows for graph with %d vertices", h.Rows, a.G.NumVertices()))
	}
	out := tensor.New(a.NumOut, h.Cols)
	// Each output row u is written by exactly one worker (the
	// one-writer-per-row discipline of tensor.ParallelRows), and the w == 1
	// sum path drops the multiply: 1*x == x bitwise for every float32 x. Both
	// keep the result bit-identical to the historical serial loop at any
	// worker count.
	tensor.ParallelRows(a.NumOut, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			w := a.weight(int32(u))
			if w == 0 {
				continue
			}
			orow := out.Row(u)
			if w == 1 {
				for _, v := range a.G.Neighbors(int32(u)) {
					tensor.AddTo(orow, h.Row(int(v)))
				}
			} else {
				for _, v := range a.G.Neighbors(int32(u)) {
					tensor.Axpy(w, h.Row(int(v)), orow)
				}
			}
		}
	})
	return out
}

// Backward distributes grad (NumOut×f) back to the input rows: the gradient
// for input row v accumulates w_u · grad_u over every u with v ∈ N(u). The
// result has one row per graph vertex (local + remote for local graphs); the
// remote rows are the gradients distributed training must ship back to the
// owning GPUs.
func (a *Aggregator) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if grad.Rows != a.NumOut {
		panic(fmt.Sprintf("gnn: aggregate grad %d rows, want %d", grad.Rows, a.NumOut))
	}
	out := tensor.New(a.G.NumVertices(), grad.Cols)
	// Backward scatters into neighbor rows, so it stays serial (two vertices
	// can share a neighbor — no one-writer-per-row partition exists). The
	// scaled row w·grad_u is computed once per u instead of once per edge:
	// every neighbor then receives the identical per-element products the
	// per-edge loop produced, in the same order.
	scaled := make([]float32, grad.Cols)
	for u := 0; u < a.NumOut; u++ {
		w := a.weight(int32(u))
		if w == 0 {
			continue
		}
		src := grad.Row(u)
		if w != 1 {
			for j, x := range src {
				scaled[j] = w * x
			}
			src = scaled
		}
		for _, v := range a.G.Neighbors(int32(u)) {
			tensor.AddTo(out.Row(int(v)), src)
		}
	}
	return out
}
