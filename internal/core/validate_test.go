package core

import (
	"strings"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/topology"
)

// Table-driven input validation for the planner front door: garbage option
// values must be rejected with a field-naming error before any planning
// work, and legal zero values must select defaults instead.

func TestSPSTOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    SPSTOptions
		wantErr string // "" = valid
	}{
		{"zero value", SPSTOptions{}, ""},
		{"defaults spelled out", SPSTOptions{ChunkSize: 16, Workers: 1, BatchSize: 1}, ""},
		{"parallel config", SPSTOptions{Workers: 8, BatchSize: 32}, ""},
		{"ablations", SPSTOptions{DisableForwarding: true, TreePerSource: true}, ""},
		{"negative chunk", SPSTOptions{ChunkSize: -1}, "ChunkSize"},
		{"negative workers", SPSTOptions{Workers: -4}, "Workers"},
		{"negative batch", SPSTOptions{BatchSize: -2}, "BatchSize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted %+v", tc.opts)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending field %q", err, tc.wantErr)
			}
		})
	}
}

func TestPlanSPSTRejectsBadInputs(t *testing.T) {
	topo := topology.SubDGX1(4)
	rel := partitionFor(t, graph.Ring(64), topo, 1)
	cases := []struct {
		name  string
		bytes int64
		opts  SPSTOptions
	}{
		{"zero bytesPerVertex", 0, SPSTOptions{}},
		{"negative bytesPerVertex", -8, SPSTOptions{}},
		{"negative workers", 256, SPSTOptions{Workers: -1}},
		{"negative batch", 256, SPSTOptions{BatchSize: -1}},
		{"negative chunk", 256, SPSTOptions{ChunkSize: -16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := PlanSPST(rel, topo, tc.bytes, tc.opts); err == nil {
				t.Fatalf("PlanSPST accepted bytes=%d opts=%+v", tc.bytes, tc.opts)
			}
		})
	}
	// Mismatched fabric: the relation spans 4 GPUs, the topology 8.
	if _, _, err := PlanSPST(rel, topology.DGX1(), 256, SPSTOptions{}); err == nil {
		t.Fatal("PlanSPST accepted a relation/topology GPU-count mismatch")
	}
}

// TestSPSTOptionsDefaults pins the documented default resolution: zero
// values mean ChunkSize 16, Workers 1, BatchSize 1 (exact serial planning).
func TestSPSTOptionsDefaults(t *testing.T) {
	d := SPSTOptions{}.withDefaults()
	if d.ChunkSize != 16 || d.Workers != 1 || d.BatchSize != 1 {
		t.Fatalf("withDefaults() = %+v, want ChunkSize 16, Workers 1, BatchSize 1", d)
	}
	keep := SPSTOptions{ChunkSize: 4, Workers: 8, BatchSize: 2}.withDefaults()
	if keep.ChunkSize != 4 || keep.Workers != 8 || keep.BatchSize != 2 {
		t.Fatalf("withDefaults() clobbered explicit values: %+v", keep)
	}
}
