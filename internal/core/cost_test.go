package core

import (
	"math"
	"testing"

	"dgcl/internal/topology"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestModelChannelTime(t *testing.T) {
	topo := topology.DGX1()
	m, err := NewModel(topo)
	if err != nil {
		t.Fatal(err)
	}
	// GPU0->GPU3 is NV2: 1 GB in 1/48.35 s.
	got := m.ChannelTime(0, 3, 1e9)
	want := 1e9 / topology.NV2.Bandwidth()
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("NV2 time=%v want %v", got, want)
	}
	// GPU0->GPU5 crosses QPI: bottleneck is QPI.
	got = m.ChannelTime(0, 5, 1e9)
	want = 1e9 / topology.QPI.Bandwidth()
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("QPI-bound time=%v want %v", got, want)
	}
}

func TestStateSingleTransferCost(t *testing.T) {
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	s.Add(0, 0, 1, 1e9) // NV1 link 0-1
	want := 1e9 / topology.NV1.Bandwidth()
	if !almostEqual(s.Cost(), want, 1e-12) {
		t.Fatalf("cost=%v want %v", s.Cost(), want)
	}
}

func TestStateParallelLinksDoNotAdd(t *testing.T) {
	// Two transfers in the same stage on disjoint links: stage time is the
	// max, not the sum.
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	s.Add(0, 0, 1, 1e9)                    // NV1
	s.Add(0, 4, 7, 1e9)                    // NV2, disjoint
	want := 1e9 / topology.NV1.Bandwidth() // slower of the two
	if !almostEqual(s.Cost(), want, 1e-12) {
		t.Fatalf("cost=%v want %v (parallel links must not add)", s.Cost(), want)
	}
}

func TestStateContentionOnSharedHop(t *testing.T) {
	// GPU0->GPU5 and GPU1->GPU4 (neither pair has NVLink on the DGX-1) both
	// cross the same QPI hop in the same direction during the same stage:
	// their volumes aggregate on QPI.
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	s.Add(0, 0, 5, 1e9)
	s.Add(0, 1, 4, 1e9)
	want := 2e9 / topology.QPI.Bandwidth()
	if !almostEqual(s.Cost(), want, 1e-9) {
		t.Fatalf("cost=%v want %v (contention must aggregate)", s.Cost(), want)
	}
}

func TestStateOppositeDirectionsDoNotContend(t *testing.T) {
	// Full-duplex: 0->5 and 5->0 cross QPI in opposite directions.
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	s.Add(0, 0, 5, 1e9)
	s.Add(0, 5, 0, 1e9)
	want := 1e9 / topology.QPI.Bandwidth()
	if !almostEqual(s.Cost(), want, 1e-9) {
		t.Fatalf("cost=%v want %v (duplex directions independent)", s.Cost(), want)
	}
}

func TestStateStagesAdd(t *testing.T) {
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	s.Add(0, 0, 1, 1e9)
	s.Add(1, 1, 4, 1e9) // 1-4 has no NVLink: QPI-bound
	want := 1e9/topology.NV1.Bandwidth() + 1e9/topology.QPI.Bandwidth()
	if !almostEqual(s.Cost(), want, 1e-9) {
		t.Fatalf("cost=%v want %v (stages are sequential)", s.Cost(), want)
	}
	if s.NumStages() != 2 {
		t.Fatalf("stages=%d", s.NumStages())
	}
}

func TestIncrementalMatchesAdd(t *testing.T) {
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	s.Add(0, 0, 5, 5e8)
	s.Add(0, 2, 6, 1e9)
	inc := s.Incremental(0, 1, 5, 7e8)
	before := s.Cost()
	s.Add(0, 1, 5, 7e8)
	if got := s.Cost() - before; !almostEqual(got, inc, 1e-12) {
		t.Fatalf("incremental=%v actual delta=%v", inc, got)
	}
}

func TestIncrementalZeroOnUnderloadedLink(t *testing.T) {
	// With a heavily loaded QPI hop, adding a small volume on an idle NVLink
	// in the same stage costs nothing — this drives SPST's load balancing.
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	s.Add(0, 0, 5, 1e9) // QPI-bound; stage time >> NVLink small transfer
	if inc := s.Incremental(0, 4, 7, 1e6); inc != 0 {
		t.Fatalf("incremental on idle NVLink should be 0, got %v", inc)
	}
}

func TestCostOfPlanMatchesState(t *testing.T) {
	m, _ := NewModel(topology.DGX1())
	s := NewState(m)
	p := NewPlan(8, 4, "test")
	p.Stages = [][]Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1, 2, 3}}, {Src: 2, Dst: 6, Vertices: []int32{9}}},
		{{Src: 1, Dst: 5, Vertices: []int32{1, 2, 3}}},
	}
	for si, st := range p.Stages {
		for _, tr := range st {
			s.Add(si, tr.Src, tr.Dst, float64(int64(len(tr.Vertices))*p.BytesPerVertex))
		}
	}
	if got := CostOfPlan(m, p); !almostEqual(got, s.Cost(), 1e-15) {
		t.Fatalf("CostOfPlan=%v state=%v", got, s.Cost())
	}
}

func TestFeatureDimensionInvariance(t *testing.T) {
	// §5.1: scaling the feature dimension scales the cost of every plan
	// linearly, so the optimal plan is invariant. Verify linearity.
	m, _ := NewModel(topology.DGX1())
	p := NewPlan(8, 100, "test")
	p.Stages = [][]Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1, 2}}, {Src: 0, Dst: 5, Vertices: []int32{3}}},
		{{Src: 1, Dst: 4, Vertices: []int32{1}}},
	}
	c1 := CostOfPlan(m, p)
	p.BytesPerVertex = 300
	c3 := CostOfPlan(m, p)
	if !almostEqual(c3, 3*c1, 1e-12*c1+1e-18) {
		t.Fatalf("cost must scale linearly with feature dim: %v vs 3*%v", c3, c1)
	}
}

func TestLinkClassBreakdown(t *testing.T) {
	m, _ := NewModel(topology.DGX1())
	p := NewPlan(8, 1000, "test")
	p.Stages = [][]Transfer{
		{{Src: 0, Dst: 1, Vertices: make([]int32, 100)}}, // NVLink only
	}
	nv, ot := LinkClassBreakdown(m, p)
	if nv <= 0 || ot != 0 {
		t.Fatalf("nv=%v ot=%v for NVLink-only plan", nv, ot)
	}
	p.Stages = [][]Transfer{
		{{Src: 0, Dst: 5, Vertices: make([]int32, 100)}}, // PCIe/QPI only
	}
	nv, ot = LinkClassBreakdown(m, p)
	if nv != 0 || ot <= 0 {
		t.Fatalf("nv=%v ot=%v for fabric-only plan", nv, ot)
	}
}
