package core

import (
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
)

func ringRelation(t *testing.T) *comm.Relation {
	t.Helper()
	g := graph.Ring(8)
	p := partition.Range(g, 4)
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestPairID(t *testing.T) {
	p := MakePair(8, 3, 5)
	if p.Src(8) != 3 || p.Dst(8) != 5 {
		t.Fatalf("pair roundtrip: %d -> %d,%d", p, p.Src(8), p.Dst(8))
	}
}

func TestPlanValidateCatchesPhantomSend(t *testing.T) {
	rel := ringRelation(t)
	p := NewPlan(4, 8, "bad")
	// GPU0 sends vertex 4 which it does not own.
	p.Stages = [][]Transfer{{{Src: 0, Dst: 1, Vertices: []int32{4}}}}
	if err := p.Validate(rel); err == nil {
		t.Fatal("expected phantom-send error")
	}
}

func TestPlanValidateCatchesMissingDelivery(t *testing.T) {
	rel := ringRelation(t)
	p := NewPlan(4, 8, "empty")
	if err := p.Validate(rel); err == nil {
		t.Fatal("expected missing-delivery error")
	}
}

func TestPlanValidateCatchesSelfSend(t *testing.T) {
	rel := ringRelation(t)
	p := NewPlan(4, 8, "self")
	p.Stages = [][]Transfer{{{Src: 0, Dst: 0, Vertices: []int32{0}}}}
	if err := p.Validate(rel); err == nil {
		t.Fatal("expected self-send error")
	}
}

func TestPlanValidateForwardingChain(t *testing.T) {
	// Vertex 1 (owned by GPU0) forwarded 0->1 at stage 1, then 1->2 at stage
	// 2 must be accepted; sending 1->2 at stage 1 must be rejected.
	g := graph.Ring(8)
	// Custom relation: GPU2 needs vertex 1 as well.
	p := partition.Range(g, 4)
	rel, _ := comm.Build(g, p)
	rel.Remote[2] = append(rel.Remote[2], 1)
	rel.Send[0][2] = append(rel.Send[0][2], 1)

	good := NewPlan(4, 8, "fwd")
	good.Stages = [][]Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1}}, {Src: 1, Dst: 0, Vertices: []int32{2}},
			{Src: 1, Dst: 2, Vertices: []int32{3}}, {Src: 2, Dst: 1, Vertices: []int32{4}},
			{Src: 2, Dst: 3, Vertices: []int32{5}}, {Src: 3, Dst: 2, Vertices: []int32{6}},
			{Src: 3, Dst: 0, Vertices: []int32{7}}, {Src: 0, Dst: 3, Vertices: []int32{0}}},
		{{Src: 1, Dst: 2, Vertices: []int32{1}}},
	}
	if err := good.Validate(rel); err != nil {
		t.Fatalf("forwarding chain should validate: %v", err)
	}
	bad := NewPlan(4, 8, "fwd-bad")
	bad.Stages = [][]Transfer{
		{{Src: 1, Dst: 2, Vertices: []int32{1}}},
	}
	if err := bad.Validate(rel); err == nil {
		t.Fatal("stage-1 forward of unreceived vertex must fail")
	}
}

func TestPlanTotalsAndTables(t *testing.T) {
	p := NewPlan(4, 100, "t")
	p.Stages = [][]Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1, 2, 3}}},
		{{Src: 1, Dst: 2, Vertices: []int32{1, 2}}},
	}
	if got := p.TotalBytes(); got != 500 {
		t.Fatalf("TotalBytes=%d want 500", got)
	}
	if got := p.TableMemoryBytes(); got != 5*4*2 {
		t.Fatalf("TableMemoryBytes=%d want 40", got)
	}
	pb := p.PairBytes()
	if pb[MakePair(4, 0, 1)] != 300 || pb[MakePair(4, 1, 2)] != 200 {
		t.Fatalf("PairBytes=%v", pb)
	}
	if p.NumStages() != 2 {
		t.Fatalf("NumStages=%d", p.NumStages())
	}
}

func TestBackwardScheduleReversesStages(t *testing.T) {
	p := NewPlan(4, 8, "t")
	p.Stages = [][]Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1}}},
		{{Src: 1, Dst: 2, Vertices: []int32{1}}},
	}
	sched := p.BackwardSchedule(false)
	if len(sched) != 2 {
		t.Fatalf("backward stages=%d", len(sched))
	}
	// First backward stage is the reverse of the last forward stage.
	first := sched[0][0][0]
	if first.Src != 2 || first.Dst != 1 {
		t.Fatalf("first backward transfer = %+v, want 2->1", first)
	}
	last := sched[1][0][0]
	if last.Src != 1 || last.Dst != 0 {
		t.Fatalf("last backward transfer = %+v, want 1->0", last)
	}
}

func TestBackwardNonAtomicNoReceiverConflicts(t *testing.T) {
	// Stage with three transfers into GPU0 and one into GPU1: non-atomic
	// split must put the three GPU0 deliveries into different sub-stages.
	p := NewPlan(4, 8, "t")
	p.Stages = [][]Transfer{{
		{Src: 0, Dst: 1, Vertices: []int32{1}},
		{Src: 0, Dst: 2, Vertices: []int32{1}},
		{Src: 0, Dst: 3, Vertices: []int32{1}},
		{Src: 1, Dst: 2, Vertices: []int32{5}},
	}}
	sched := p.BackwardSchedule(true)
	if len(sched) != 1 {
		t.Fatalf("stages=%d", len(sched))
	}
	subs := sched[0]
	if len(subs) != 3 {
		t.Fatalf("expected 3 sub-stages for 3-way per-vertex fan-in, got %d", len(subs))
	}
	// No (receiver, vertex) pair may appear twice within a sub-stage.
	for _, sub := range subs {
		seen := map[[2]int32]bool{}
		for _, tr := range sub {
			for _, v := range tr.Vertices {
				key := [2]int32{int32(tr.Dst), v}
				if seen[key] {
					t.Fatalf("vertex %d delivered to %d twice in one sub-stage", v, tr.Dst)
				}
				seen[key] = true
			}
		}
	}
	// Independent transfers (1->0 vertex 1 and 2->1 vertex 5) stay in the
	// first sub-stage: the split must not serialize non-conflicting pairs.
	if len(subs[0]) != 2 {
		t.Fatalf("first sub-stage should keep 2 parallel transfers, got %d", len(subs[0]))
	}
	// All vertex deliveries preserved.
	total := 0
	for _, sub := range subs {
		for _, tr := range sub {
			total += len(tr.Vertices)
		}
	}
	if total != 4 {
		t.Fatalf("vertex deliveries lost in split: %d", total)
	}
}

func TestBackwardAtomicSingleSubStage(t *testing.T) {
	p := NewPlan(4, 8, "t")
	p.Stages = [][]Transfer{{
		{Src: 0, Dst: 1, Vertices: []int32{1}},
		{Src: 2, Dst: 1, Vertices: []int32{9}},
	}}
	sched := p.BackwardSchedule(false)
	if len(sched[0]) != 1 {
		t.Fatalf("atomic mode must keep one sub-stage, got %d", len(sched[0]))
	}
}

func TestPlanBuilderTrimsEmptyStages(t *testing.T) {
	pb := newPlanBuilder(4)
	pb.add(2, 0, 1, []int32{7})
	p := pb.build(8, "t")
	if p.NumStages() != 3 {
		t.Fatalf("stages=%d want 3 (two empty leading)", p.NumStages())
	}
	if len(p.Stages[0]) != 0 || len(p.Stages[2]) != 1 {
		t.Fatal("stage contents wrong")
	}
}

func TestPlanString(t *testing.T) {
	p := NewPlan(4, 8, "x")
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}
