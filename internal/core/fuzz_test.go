package core

import (
	"strings"
	"testing"
)

// FuzzReadPlanJSON: the plan decoder must never panic and must reject
// structurally invalid plans.
func FuzzReadPlanJSON(f *testing.F) {
	f.Add(`{"k":4,"bytes_per_vertex":4,"algorithm":"x","stages":[[{"Src":0,"Dst":1,"Vertices":[1,2]}]]}`)
	f.Add(`{"k":0}`)
	f.Add(`garbage`)
	f.Add(`{"k":2,"bytes_per_vertex":1,"stages":[[{"Src":1,"Dst":1,"Vertices":[]}]]}`)
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ReadPlanJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted plans answer queries without panicking.
		_ = p.NumStages()
		_ = p.TotalBytes()
		_ = p.TableMemoryBytes()
		_ = p.ComputeStats(nil)
		_ = p.BackwardSchedule(true)
	})
}
