package core

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzReadPlanJSON: the plan decoder must never panic and must reject
// structurally invalid plans.
func FuzzReadPlanJSON(f *testing.F) {
	f.Add(`{"k":4,"bytes_per_vertex":4,"algorithm":"x","stages":[[{"Src":0,"Dst":1,"Vertices":[1,2]}]]}`)
	f.Add(`{"k":0}`)
	f.Add(`garbage`)
	f.Add(`{"k":2,"bytes_per_vertex":1,"stages":[[{"Src":1,"Dst":1,"Vertices":[]}]]}`)
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ReadPlanJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted plans answer queries without panicking.
		_ = p.NumStages()
		_ = p.TotalBytes()
		_ = p.TableMemoryBytes()
		_ = p.ComputeStats(nil)
		_ = p.BackwardSchedule(true)
	})
}

// planFromBytes derives a structurally valid plan deterministically from
// fuzzed primitives, so the round-trip property gets arbitrary (but legal)
// shapes: ragged stages, empty vertex lists, every src/dst combination.
func planFromBytes(k int, bytesPerVertex int64, algorithm string, data []byte) *Plan {
	p := NewPlan(k, bytesPerVertex, algorithm)
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	numStages := int(next()) % 5
	for s := 0; s < numStages; s++ {
		var stage []Transfer
		numTransfers := int(next()) % 4
		for t := 0; t < numTransfers; t++ {
			src := int(next()) % k
			dst := int(next()) % k
			if src == dst {
				dst = (dst + 1) % k
			}
			if src == dst { // k == 1: no legal transfer exists
				continue
			}
			var verts []int32
			numVerts := int(next()) % 6
			for v := 0; v < numVerts; v++ {
				verts = append(verts, int32(next()))
			}
			stage = append(stage, Transfer{Src: src, Dst: dst, Vertices: verts})
		}
		p.Stages = append(p.Stages, stage)
	}
	return p
}

// plansEquivalent compares plans structurally, treating nil and empty
// slices as equal (JSON cannot tell them apart, so DeepEqual would flag
// spurious mismatches).
func plansEquivalent(a, b *Plan) bool {
	if a.K != b.K || a.BytesPerVertex != b.BytesPerVertex || a.Algorithm != b.Algorithm {
		return false
	}
	if len(a.Stages) != len(b.Stages) {
		return false
	}
	for si := range a.Stages {
		if len(a.Stages[si]) != len(b.Stages[si]) {
			return false
		}
		for ti := range a.Stages[si] {
			ta, tb := a.Stages[si][ti], b.Stages[si][ti]
			if ta.Src != tb.Src || ta.Dst != tb.Dst || len(ta.Vertices) != len(tb.Vertices) {
				return false
			}
			for vi := range ta.Vertices {
				if ta.Vertices[vi] != tb.Vertices[vi] {
					return false
				}
			}
		}
	}
	return true
}

// FuzzPlanJSONRoundTrip: decode(encode(p)) must reproduce p exactly, and
// decoding a damaged encoding must error (or decode cleanly), never panic.
func FuzzPlanJSONRoundTrip(f *testing.F) {
	f.Add(4, int64(8), "spst", []byte{2, 1, 0, 1, 3, 10, 20, 30})
	f.Add(1, int64(1), "", []byte{1, 1, 0, 0})
	f.Add(8, int64(1024), "p2p", []byte{4, 3, 7, 2, 5, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, k int, bytesPerVertex int64, algorithm string, data []byte) {
		// JSON replaces invalid UTF-8 with U+FFFD, so losslessness only
		// holds for valid algorithm strings.
		if k < 1 || k > 64 || bytesPerVertex < 1 || len(algorithm) > 128 || !utf8.ValidString(algorithm) {
			return
		}
		p := planFromBytes(k, bytesPerVertex, algorithm, data)
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("encode valid plan: %v", err)
		}
		encoded := buf.Bytes()
		q, err := ReadPlanJSON(bytes.NewReader(encoded))
		if err != nil {
			t.Fatalf("decode own encoding: %v\n%s", err, encoded)
		}
		if !plansEquivalent(p, q) {
			t.Fatalf("round trip changed the plan:\nbefore %+v\nafter  %+v", p, q)
		}
		// Damage one byte of the encoding: the decoder must reject or accept
		// without panicking, and an accepted plan must still answer queries.
		if len(encoded) > 0 && len(data) > 0 {
			damaged := append([]byte(nil), encoded...)
			pos := int(data[0]) % len(damaged)
			damaged[pos] ^= 1 << (data[0] % 8)
			if d, err := ReadPlanJSON(bytes.NewReader(damaged)); err == nil {
				_ = d.NumStages()
				_ = d.TotalBytes()
				_ = d.ComputeStats(nil)
			}
		}
	})
}
