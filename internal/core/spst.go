package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"dgcl/internal/comm"
	"dgcl/internal/topology"
)

// The SPST planner (Algorithm 1). Vertices are processed one at a time (in
// random order); for each vertex a rooted tree over the GPU topology is grown
// greedily: repeatedly run a multi-source shortest-path search from the set
// of GPUs that already hold the vertex to the destinations that do not,
// where the weight of traversing a channel at tree depth i is the marginal
// increase of the total plan cost if the vertex were sent on that channel at
// stage i (Algorithm 2, computed on demand against the accumulated State).
// The cheapest path is committed, its GPUs join the source set, and the loop
// continues until all destinations are covered.

// SPSTOptions tunes the planner.
type SPSTOptions struct {
	// Seed drives the random vertex shuffle (the paper shuffles vertices
	// before planning so that load balancing is not biased by vertex order).
	Seed int64
	// ChunkSize groups this many same-class vertices into one planning unit.
	// 1 reproduces the paper's exact per-vertex planning; larger values trade
	// a little load-balancing granularity for planning speed. Default 16.
	ChunkSize int
	// DisableForwarding restricts every vertex to a direct source->destination
	// transfer (ablation: isolates the value of multi-hop relays; the result
	// is peer-to-peer with the cost model's stage accounting).
	DisableForwarding bool
	// TreePerSource builds one shared tree per source GPU spanning the union
	// of all its destinations, sending every outgoing vertex along the whole
	// tree (ablation: isolates the value of per-vertex strategy flexibility
	// and communication fusion).
	TreePerSource bool
	// Workers is the number of concurrent planning workers. 1 (or 0, the
	// default) with BatchSize<=1 runs the exact serial algorithm; larger
	// values shard work items into waves planned against an immutable
	// snapshot of the link loads (see parallel.go for the staleness model).
	Workers int
	// BatchSize is the number of work items each worker plans per wave
	// (default 1). Workers*BatchSize is the staleness window: link loads are
	// committed between waves, so items within one wave do not see each
	// other's load. Larger batches amortize wave synchronization on many-core
	// machines at a small plan-quality cost.
	BatchSize int
}

func (o SPSTOptions) withDefaults() SPSTOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 16
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	return o
}

// Validate rejects option values that would otherwise plan garbage. Zero
// values are legal (they select defaults); negative ones are errors.
func (o SPSTOptions) Validate() error {
	if o.ChunkSize < 0 {
		return fmt.Errorf("core: SPSTOptions.ChunkSize must be >= 0, got %d", o.ChunkSize)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: SPSTOptions.Workers must be >= 0, got %d", o.Workers)
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("core: SPSTOptions.BatchSize must be >= 0, got %d", o.BatchSize)
	}
	return nil
}

// planInvocations counts tree-search planner runs (not cache hits); tests and
// the plan cache use it to assert that warm lookups skip planning entirely.
var planInvocations atomic.Int64

// PlanInvocations returns the number of times the SPST tree search has
// actually run in this process. PlanCache hits do not increment it.
func PlanInvocations() int64 { return planInvocations.Load() }

// workItem is one planning unit: a set of same-class vertices routed
// together.
type workItem struct {
	src      int
	dsts     []int
	vertices []int32
}

// PlanSPST runs the SPST algorithm for the relation over the topology and
// returns the plan together with the planner's final cost state (whose
// Cost() is the modeled communication time of the plan).
func PlanSPST(rel *comm.Relation, topo *topology.Topology, bytesPerVertex int64, opts SPSTOptions) (*Plan, *State, error) {
	if topo.NumGPUs() != rel.K {
		return nil, nil, fmt.Errorf("core: topology has %d GPUs, relation %d", topo.NumGPUs(), rel.K)
	}
	if bytesPerVertex < 1 {
		return nil, nil, fmt.Errorf("core: bytesPerVertex must be >= 1, got %d", bytesPerVertex)
	}
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults()
	m, err := NewModel(topo)
	if err != nil {
		return nil, nil, err
	}
	planInvocations.Add(1)
	items := buildWorkItems(rel, opts)
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	pb := newPlanBuilder(rel.K)
	var state *State
	// Forwarding-free plans never read link state, so the serial loop is
	// already exact and parallelism has nothing to hide latency behind.
	if opts.DisableForwarding || (opts.Workers <= 1 && opts.BatchSize <= 1) {
		state = planSerial(m, items, bytesPerVertex, opts, pb)
	} else {
		state = planWaves(m, items, bytesPerVertex, opts, pb)
	}
	plan := pb.build(bytesPerVertex, algName(opts))
	return plan, state, nil
}

// planSerial is the paper's one-item-at-a-time loop: every tree search sees
// the fully up-to-date link loads, including earlier edges of its own item.
func planSerial(m *Model, items []workItem, bytesPerVertex int64, opts SPSTOptions, pb *planBuilder) *State {
	state := NewState(m)
	sp := newTreeSearch(m.K)
	for _, it := range items {
		weight := float64(int64(len(it.vertices)) * bytesPerVertex)
		if opts.DisableForwarding {
			for _, d := range it.dsts {
				state.Add(0, it.src, d, weight)
				pb.add(0, it.src, d, it.vertices)
			}
			continue
		}
		sp.growTree(state, it, weight, pb)
	}
	return state
}

func algName(opts SPSTOptions) string {
	switch {
	case opts.DisableForwarding:
		return "spst-noforward"
	case opts.TreePerSource:
		return "spst-sourcetree"
	default:
		return "spst"
	}
}

// buildWorkItems expands the relation's vertex classes into planning units.
func buildWorkItems(rel *comm.Relation, opts SPSTOptions) []workItem {
	classes := rel.Classes()
	if opts.TreePerSource {
		// Merge classes by source: one item per source GPU, destinations are
		// the union, carrying all outgoing vertices.
		bySrc := make(map[int]*workItem)
		for _, c := range classes {
			it := bySrc[c.Src]
			if it == nil {
				it = &workItem{src: c.Src}
				bySrc[c.Src] = it
			}
			it.vertices = append(it.vertices, c.Vertices...)
			for _, d := range c.Dsts {
				found := false
				for _, e := range it.dsts {
					if e == d {
						found = true
						break
					}
				}
				if !found {
					it.dsts = append(it.dsts, d)
				}
			}
		}
		items := make([]workItem, 0, len(bySrc))
		for src := 0; src < rel.K; src++ {
			if it := bySrc[src]; it != nil {
				items = append(items, *it)
			}
		}
		return items
	}
	var items []workItem
	for _, c := range classes {
		for off := 0; off < len(c.Vertices); off += opts.ChunkSize {
			end := off + opts.ChunkSize
			if end > len(c.Vertices) {
				end = len(c.Vertices)
			}
			items = append(items, workItem{src: c.Src, dsts: c.Dsts, vertices: c.Vertices[off:end]})
		}
	}
	return items
}

// treeSearch holds the scratch arrays for the per-item tree construction so
// planning does not allocate per vertex.
type treeSearch struct {
	k       int
	inTree  []bool // GPU already holds the item
	depth   []int  // tree depth of in-tree GPUs
	needed  []bool // destination not yet reached
	dist    []float64
	pdepth  []int // path depth during Dijkstra
	parent  []int
	settled []bool
}

func newTreeSearch(k int) *treeSearch {
	return &treeSearch{
		k:      k,
		inTree: make([]bool, k), depth: make([]int, k), needed: make([]bool, k),
		dist: make([]float64, k), pdepth: make([]int, k), parent: make([]int, k),
		settled: make([]bool, k),
	}
}

// growTree implements the inner loop of Algorithm 1 for one work item,
// committing volumes to state and transfers to pb.
func (ts *treeSearch) growTree(state *State, it workItem, weight float64, pb *planBuilder) {
	k := ts.k
	for i := 0; i < k; i++ {
		ts.inTree[i] = false
		ts.needed[i] = false
	}
	ts.inTree[it.src] = true
	ts.depth[it.src] = 0
	remaining := 0
	for _, d := range it.dsts {
		if !ts.inTree[d] {
			ts.needed[d] = true
			remaining++
		}
	}
	for remaining > 0 {
		dest := ts.dijkstra(state, weight)
		if dest < 0 {
			// Unreachable destination: fall back to a direct stage-1 send so
			// the plan stays executable (should not happen on connected
			// fabrics).
			for d := 0; d < k; d++ {
				if ts.needed[d] {
					state.Add(0, it.src, d, weight)
					pb.add(0, it.src, d, it.vertices)
					ts.needed[d] = false
					remaining--
				}
			}
			return
		}
		// Walk the path root-ward, collecting edges, then commit them in
		// root-to-leaf order.
		var path []int // node sequence leaf..root-side
		for n := dest; ; n = ts.parent[n] {
			path = append(path, n)
			if ts.inTree[n] {
				break
			}
		}
		for i := len(path) - 1; i > 0; i-- {
			u, v := path[i], path[i-1]
			stage := ts.depth[u] // edge u->v runs at stage depth(u)+1, index depth(u)
			state.Add(stage, u, v, weight)
			pb.add(stage, u, v, it.vertices)
			ts.inTree[v] = true
			ts.depth[v] = ts.depth[u] + 1
			if ts.needed[v] {
				ts.needed[v] = false
				remaining--
			}
		}
	}
}

// dijkstra runs the multi-source shortest-path search of Algorithm 1 line 7:
// sources are all in-tree GPUs (distance 0 at their tree depth); edge weight
// for hopping u->v at path depth d is the marginal cost of sending the item
// on channel (u,v) at stage d. It returns the first settled needed
// destination (the globally cheapest one), or -1 if none is reachable.
func (ts *treeSearch) dijkstra(state *State, weight float64) int {
	k := ts.k
	for i := 0; i < k; i++ {
		ts.dist[i] = math.Inf(1)
		ts.settled[i] = false
		ts.parent[i] = -1
		if ts.inTree[i] {
			ts.dist[i] = 0
			ts.pdepth[i] = ts.depth[i]
		}
	}
	for {
		u := -1
		for i := 0; i < k; i++ {
			if !ts.settled[i] && !math.IsInf(ts.dist[i], 1) && (u < 0 || ts.dist[i] < ts.dist[u]) {
				u = i
			}
		}
		if u < 0 {
			return -1
		}
		ts.settled[u] = true
		if ts.needed[u] {
			return u
		}
		for v := 0; v < k; v++ {
			if v == u || ts.settled[v] || ts.inTree[v] {
				continue
			}
			w := state.Incremental(ts.pdepth[u], u, v, weight)
			if nd := ts.dist[u] + w; nd < ts.dist[v] {
				ts.dist[v] = nd
				ts.pdepth[v] = ts.pdepth[u] + 1
				ts.parent[v] = u
			}
		}
	}
}
