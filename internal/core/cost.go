package core

import (
	"fmt"

	"dgcl/internal/tensor"
	"dgcl/internal/topology"
)

// The cost model of §5.1. Communications happen in stages; within a stage
// all transfers run concurrently. Each logical GPU-to-GPU channel occupies a
// chain of physical hops; the data a channel moves in a stage is charged to
// every hop it crosses, in the hop's direction. A hop's stage time is its
// aggregate charged bytes divided by its bandwidth (this is how contention
// between channels sharing the hop is accounted); a stage's time is the
// maximum over all hop times (links in the same stage are parallel, and a
// stage finishes when its slowest link does); the plan's cost is the sum of
// stage times.

// hopSlot encodes a directed use of a physical connection: conn id * 2 plus
// 0/1 for the A->B / B->A direction. Opposite directions of a full-duplex
// connection do not contend.
type hopSlot int32

// Model precomputes, for every ordered GPU pair, the direct channel and its
// directed hop slots, so cost evaluation never touches the topology again.
type Model struct {
	Topo  *topology.Topology
	K     int
	chans [][]*topology.Channel
	hops  [][][]hopSlot // [src][dst] -> directed hop slots
	bw    []float64     // hop slot -> bandwidth (bytes/s)
	// Reciprocals let the batched planner's frozen cost tables multiply
	// instead of divide (see parallel.go); the serial path keeps dividing so
	// its plans stay bit-identical across releases.
	invBW         []float64
	invBottleneck [][]float64 // [src][dst] -> 1 / min hop bandwidth
}

// NewModel builds a cost model for the topology.
func NewModel(topo *topology.Topology) (*Model, error) {
	k := topo.NumGPUs()
	chans, err := topo.AllGPUChannels()
	if err != nil {
		return nil, err
	}
	m := &Model{Topo: topo, K: k, chans: chans}
	m.bw = make([]float64, 2*len(topo.Conns()))
	for _, c := range topo.Conns() {
		m.bw[2*c.ID] = c.Bandwidth
		m.bw[2*c.ID+1] = c.Bandwidth
	}
	m.invBW = make([]float64, len(m.bw))
	for i, bw := range m.bw {
		if bw > 0 {
			m.invBW[i] = 1 / bw
		}
	}
	m.hops = make([][][]hopSlot, k)
	m.invBottleneck = make([][]float64, k)
	for s := 0; s < k; s++ {
		m.hops[s] = make([][]hopSlot, k)
		m.invBottleneck[s] = make([]float64, k)
		for d := 0; d < k; d++ {
			if s == d {
				continue
			}
			m.hops[s][d] = m.directedHops(chans[s][d])
			for _, h := range m.hops[s][d] {
				if inv := m.invBW[h]; inv > m.invBottleneck[s][d] {
					m.invBottleneck[s][d] = inv
				}
			}
		}
	}
	return m, nil
}

// directedHops walks the channel's hop chain from the source node and
// assigns each hop its traversal direction.
func (m *Model) directedHops(ch *topology.Channel) []hopSlot {
	cur := m.Topo.GPUNode(ch.Src)
	out := make([]hopSlot, len(ch.Hops))
	for i, hi := range ch.Hops {
		c := m.Topo.Conn(hi)
		if c.A == cur {
			out[i] = hopSlot(2 * c.ID)
			cur = c.B
		} else {
			out[i] = hopSlot(2*c.ID + 1)
			cur = c.A
		}
	}
	return out
}

// Channel returns the direct channel between two GPUs (nil on the diagonal).
func (m *Model) Channel(src, dst int) *topology.Channel { return m.chans[src][dst] }

// ChannelTime returns the uncontended time to move the given bytes over the
// direct channel between src and dst (bottleneck hop bound).
func (m *Model) ChannelTime(src, dst int, bytes int64) float64 {
	var worst float64
	for _, h := range m.hops[src][dst] {
		if t := float64(bytes) / m.bw[h]; t > worst {
			worst = t
		}
	}
	return worst
}

// State is the mutable accumulator the SPST algorithm updates as it routes
// vertices: per-stage, per-directed-hop byte counts, with the per-stage
// maximum hop time cached so that cost and incremental-cost queries are
// O(hops per channel).
type State struct {
	m        *Model
	stageVol [][]float64 // [stage][hopSlot] -> bytes
	stageMax []float64   // [stage] -> current stage time (seconds)
}

// NewState returns an empty accumulation state for the model.
func NewState(m *Model) *State { return &State{m: m} }

// Model returns the model the state accumulates against.
func (s *State) Model() *Model { return s.m }

func (s *State) ensure(stage int) {
	for len(s.stageVol) <= stage {
		s.stageVol = append(s.stageVol, make([]float64, len(s.m.bw)))
		s.stageMax = append(s.stageMax, 0)
	}
}

// Cost returns the total modeled communication time in seconds: the sum over
// stages of the maximum hop time in the stage.
func (s *State) Cost() float64 {
	return tensor.Sum64(s.stageMax)
}

// StageTime returns the modeled time of one stage (0 if the stage is empty).
func (s *State) StageTime(stage int) float64 {
	if stage >= len(s.stageMax) {
		return 0
	}
	return s.stageMax[stage]
}

// NumStages returns the number of stages with any volume.
func (s *State) NumStages() int { return len(s.stageMax) }

// Incremental returns the increase in total cost if `bytes` more bytes were
// sent on the direct channel src->dst during the given stage (Algorithm 2's
// C(i, ej) entries, computed on demand).
func (s *State) Incremental(stage, src, dst int, bytes float64) float64 {
	old := 0.0
	if stage < len(s.stageMax) {
		old = s.stageMax[stage]
	}
	newMax := old
	for _, h := range s.m.hops[src][dst] {
		var vol float64
		if stage < len(s.stageVol) {
			vol = s.stageVol[stage][h]
		}
		if t := (vol + bytes) / s.m.bw[h]; t > newMax {
			newMax = t
		}
	}
	return newMax - old
}

// Add commits `bytes` on the direct channel src->dst at the given stage and
// updates the cached stage maximum.
func (s *State) Add(stage, src, dst int, bytes float64) {
	s.ensure(stage)
	for _, h := range s.m.hops[src][dst] {
		s.stageVol[stage][h] += bytes
		if t := s.stageVol[stage][h] / s.m.bw[h]; t > s.stageMax[stage] {
			s.stageMax[stage] = t
		}
	}
}

// ReplayState rebuilds the planner's accumulation state from a finished plan
// by replaying every transfer, independent of any State accumulated during
// planning. The plan cache uses it to return a cost state for cached plans.
func ReplayState(m *Model, p *Plan) *State {
	s := NewState(m)
	for si, st := range p.Stages {
		for _, t := range st {
			s.Add(si, t.Src, t.Dst, float64(int64(len(t.Vertices))*p.BytesPerVertex))
		}
	}
	return s
}

// CostOfPlan evaluates the §5.1 cost model for a complete plan against the
// model.
func CostOfPlan(m *Model, p *Plan) float64 { return ReplayState(m, p).Cost() }

// LinkClassBreakdown computes, for a plan, the modeled time attributable to
// NVLink hops versus all other hop types (Table 7 / Table 2 style
// breakdowns). For each stage it takes the max hop time among NVLink hops
// and among non-NVLink hops separately and sums over stages.
func LinkClassBreakdown(m *Model, p *Plan) (nvlink, others float64) {
	numStages := p.NumStages()
	nvMax := make([]float64, numStages)
	otMax := make([]float64, numStages)
	vol := make(map[[2]int]float64) // (stage, hopSlot) -> bytes
	for si, st := range p.Stages {
		for _, t := range st {
			bytes := float64(int64(len(t.Vertices)) * p.BytesPerVertex)
			for _, h := range m.hops[t.Src][t.Dst] {
				key := [2]int{si, int(h)}
				vol[key] += bytes
				tm := vol[key] / m.bw[h]
				connType := m.Topo.Conn(int(h) / 2).Type
				if connType.IsNVLink() {
					if tm > nvMax[si] {
						nvMax[si] = tm
					}
				} else if tm > otMax[si] {
					otMax[si] = tm
				}
			}
		}
	}
	nvlink = tensor.Sum64(nvMax)
	others = tensor.Sum64(otMax)
	return nvlink, others
}

func (m *Model) String() string {
	return fmt.Sprintf("core.Model{%s, K=%d, conns=%d}", m.Topo.Name, m.K, len(m.Topo.Conns()))
}
