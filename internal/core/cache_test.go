package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dgcl/internal/graph"
	"dgcl/internal/topology"
)

func cacheWorkload(t *testing.T) (*relTopo, SPSTOptions) {
	t.Helper()
	topo := topology.DGX1()
	rel := partitionFor(t, graph.CommunityGraph(400, 10, 8, 0.8, 4), topo, 4)
	return &relTopo{rel: rel, topo: topo}, SPSTOptions{Seed: 4}
}

// TestPlanCacheWarmHitSkipsPlanning: the acceptance property of the cache —
// a warm lookup returns the plan without running the tree search at all,
// asserted via the planner invocation counter.
func TestPlanCacheWarmHitSkipsPlanning(t *testing.T) {
	w, opts := cacheWorkload(t)
	c := NewPlanCache("")

	before := PlanInvocations()
	cold, coldState, err := c.PlanSPST(w.rel, w.topo, 1024, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := PlanInvocations() - before; got != 1 {
		t.Fatalf("cold lookup ran the planner %d times, want 1", got)
	}

	warm, warmState, err := c.PlanSPST(w.rel, w.topo, 1024, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := PlanInvocations() - before; got != 1 {
		t.Fatalf("warm lookup ran the planner (total %d invocations, want 1)", got)
	}
	if !bytes.Equal(planJSONBytes(t, cold), planJSONBytes(t, warm)) {
		t.Error("warm plan differs from cold plan")
	}
	if !almostEqual(coldState.Cost(), warmState.Cost(), 1e-9*coldState.Cost()) {
		t.Errorf("warm replayed cost %v != cold cost %v", warmState.Cost(), coldState.Cost())
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestPlanCacheDiskRoundTrip: with a directory configured, a fresh cache in
// a fresh process (modeled by a second PlanCache instance) finds the stored
// plan on disk and skips planning.
func TestPlanCacheDiskRoundTrip(t *testing.T) {
	w, opts := cacheWorkload(t)
	dir := t.TempDir()

	c1 := NewPlanCache(dir)
	cold, _, err := c1.PlanSPST(w.rel, w.topo, 1024, opts)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "spst-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one spst-*.json in cache dir, got %v (err %v)", files, err)
	}

	c2 := NewPlanCache(dir)
	before := PlanInvocations()
	warm, _, err := c2.PlanSPST(w.rel, w.topo, 1024, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := PlanInvocations() - before; got != 0 {
		t.Fatalf("disk hit ran the planner %d times, want 0", got)
	}
	if !bytes.Equal(planJSONBytes(t, cold), planJSONBytes(t, warm)) {
		t.Error("plan loaded from disk differs from the stored plan")
	}
	if hits, misses := c2.Stats(); hits != 1 || misses != 0 {
		t.Errorf("fresh cache stats = (%d hits, %d misses), want (1, 0)", hits, misses)
	}
}

// TestPlanCacheDamagedFileIsMiss: a corrupt cache file must not poison
// planning — it reads as a miss and is replaced by a fresh plan.
func TestPlanCacheDamagedFileIsMiss(t *testing.T) {
	w, opts := cacheWorkload(t)
	dir := t.TempDir()
	key := CacheKey(w.rel, w.topo, 1024, opts)
	path := filepath.Join(dir, "spst-"+key[:32]+".json")
	if err := os.WriteFile(path, []byte("{definitely not a plan"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewPlanCache(dir)
	before := PlanInvocations()
	plan, _, err := c.PlanSPST(w.rel, w.topo, 1024, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := PlanInvocations() - before; got != 1 {
		t.Fatalf("damaged file should be a miss (planner ran %d times, want 1)", got)
	}
	if err := plan.Validate(w.rel); err != nil {
		t.Fatal(err)
	}
	// The replan overwrote the damaged entry: a second fresh cache hits it.
	c2 := NewPlanCache(dir)
	if _, _, err := c2.PlanSPST(w.rel, w.topo, 1024, opts); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c2.Stats(); hits != 1 {
		t.Error("replanned entry was not persisted over the damaged file")
	}
}

// TestCacheKeySensitivity: the key must separate everything that changes the
// plan and identify everything that does not (default normalization).
func TestCacheKeySensitivity(t *testing.T) {
	w, _ := cacheWorkload(t)
	base := CacheKey(w.rel, w.topo, 1024, SPSTOptions{Seed: 4})

	same := []SPSTOptions{
		{Seed: 4, ChunkSize: 16},            // explicit default chunk
		{Seed: 4, Workers: 1, BatchSize: 1}, // explicit default serial config
	}
	for _, opts := range same {
		if got := CacheKey(w.rel, w.topo, 1024, opts); got != base {
			t.Errorf("normalized options %+v changed the key", opts)
		}
	}

	diff := map[string]string{
		"seed":      CacheKey(w.rel, w.topo, 1024, SPSTOptions{Seed: 5}),
		"chunk":     CacheKey(w.rel, w.topo, 1024, SPSTOptions{Seed: 4, ChunkSize: 4}),
		"workers":   CacheKey(w.rel, w.topo, 1024, SPSTOptions{Seed: 4, Workers: 4}),
		"batch":     CacheKey(w.rel, w.topo, 1024, SPSTOptions{Seed: 4, BatchSize: 8}),
		"noforward": CacheKey(w.rel, w.topo, 1024, SPSTOptions{Seed: 4, DisableForwarding: true}),
		"bytes":     CacheKey(w.rel, w.topo, 2048, SPSTOptions{Seed: 4}),
	}
	seen := map[string]string{base: "base"}
	for name, key := range diff {
		if prev, dup := seen[key]; dup {
			t.Errorf("key for %q collides with %q", name, prev)
		}
		seen[key] = name
	}

	// A different topology with the same GPU count must also change the key.
	other := topology.PCIeOnly8()
	if got := CacheKey(w.rel, other, 1024, SPSTOptions{Seed: 4}); got == base {
		t.Error("topology change did not change the key")
	}
}

// TestPlanCacheValidatesInputs: the cached front-end applies the same input
// validation as PlanSPST instead of hashing garbage.
func TestPlanCacheValidatesInputs(t *testing.T) {
	w, opts := cacheWorkload(t)
	c := NewPlanCache("")
	if _, _, err := c.PlanSPST(w.rel, w.topo, 0, opts); err == nil {
		t.Error("bytesPerVertex=0 not rejected")
	}
	if _, _, err := c.PlanSPST(w.rel, w.topo, 1024, SPSTOptions{Workers: -1}); err == nil {
		t.Error("negative Workers not rejected")
	}
	if _, _, err := c.PlanSPST(w.rel, topology.SubDGX1(4), 1024, opts); err == nil {
		t.Error("relation/topology GPU-count mismatch not rejected")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("rejected inputs counted in stats: (%d, %d)", hits, misses)
	}
}
