package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Plan serialization: communication plans are computed once before training
// (§4.1) and can be persisted and re-issued to clients; the JSON form also
// feeds external analysis.

// planJSON is the stable wire form of a Plan.
type planJSON struct {
	K              int          `json:"k"`
	BytesPerVertex int64        `json:"bytes_per_vertex"`
	Algorithm      string       `json:"algorithm"`
	Stages         [][]Transfer `json:"stages"`
}

// WriteJSON serializes the plan.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(planJSON{
		K: p.K, BytesPerVertex: p.BytesPerVertex, Algorithm: p.Algorithm, Stages: p.Stages,
	})
}

// ReadPlanJSON deserializes a plan and performs structural validation (it
// does not validate against a relation; use Plan.Validate for that).
func ReadPlanJSON(r io.Reader) (*Plan, error) {
	var pj planJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	if pj.K < 1 {
		return nil, fmt.Errorf("core: plan has K=%d", pj.K)
	}
	if pj.BytesPerVertex < 1 {
		return nil, fmt.Errorf("core: plan has bytes_per_vertex=%d", pj.BytesPerVertex)
	}
	p := &Plan{K: pj.K, BytesPerVertex: pj.BytesPerVertex, Algorithm: pj.Algorithm, Stages: pj.Stages}
	for si, st := range p.Stages {
		for _, t := range st {
			if t.Src < 0 || t.Src >= p.K || t.Dst < 0 || t.Dst >= p.K || t.Src == t.Dst {
				return nil, fmt.Errorf("core: stage %d has invalid transfer %d->%d", si+1, t.Src, t.Dst)
			}
		}
	}
	return p, nil
}

// Stats summarizes a plan for inspection and regression baselines.
type Stats struct {
	Stages          int
	Transfers       int
	VertexSends     int64 // vertex copies moved (counting each hop)
	UniqueDelivered int64 // distinct (gpu, vertex) deliveries
	RelayedSends    int64 // vertex copies sent by a GPU that does not own them
	MaxFanoutPerGPU int   // most transfers any GPU sends in one stage
	BytesTotal      int64
	TableBytes      int64
}

// ComputeStats derives plan statistics. owner maps global vertex id to its
// owning GPU (pass nil to skip relay accounting).
func (p *Plan) ComputeStats(owner []int32) Stats {
	s := Stats{Stages: p.NumStages(), BytesTotal: p.TotalBytes(), TableBytes: p.TableMemoryBytes()}
	delivered := make(map[int64]bool)
	for _, st := range p.Stages {
		fanout := map[int]int{}
		for _, t := range st {
			s.Transfers++
			s.VertexSends += int64(len(t.Vertices))
			fanout[t.Src]++
			for _, v := range t.Vertices {
				key := int64(t.Dst)<<40 | int64(v)
				if !delivered[key] {
					delivered[key] = true
					s.UniqueDelivered++
				}
				if owner != nil && int(owner[v]) != t.Src {
					s.RelayedSends++
				}
			}
		}
		for _, f := range fanout {
			if f > s.MaxFanoutPerGPU {
				s.MaxFanoutPerGPU = f
			}
		}
	}
	return s
}

// TopPairs returns the n heaviest ordered GPU pairs by transferred bytes.
func (p *Plan) TopPairs(n int) []struct {
	Src, Dst int
	Bytes    int64
} {
	pb := p.PairBytes()
	type row struct {
		Src, Dst int
		Bytes    int64
	}
	rows := make([]row, 0, len(pb))
	for pair, b := range pb {
		rows = append(rows, row{pair.Src(p.K), pair.Dst(p.K), b})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bytes != rows[j].Bytes {
			return rows[i].Bytes > rows[j].Bytes
		}
		if rows[i].Src != rows[j].Src {
			return rows[i].Src < rows[j].Src
		}
		return rows[i].Dst < rows[j].Dst
	})
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]struct {
		Src, Dst int
		Bytes    int64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Src, Dst int
			Bytes    int64
		}{rows[i].Src, rows[i].Dst, rows[i].Bytes}
	}
	return out
}
