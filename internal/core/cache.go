package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dgcl/internal/comm"
	"dgcl/internal/topology"
)

// Content-addressed plan cache. Communication plans are a pure function of
// (communication relation, fabric, per-vertex payload, planner options), and
// training reuses one plan for every layer of every epoch — so ablation
// sweeps, repeated cmd/dgclplan invocations and re-initialized Systems keep
// recomputing identical plans. PlanCache keys plans by a SHA-256 digest of
// exactly those inputs: a hit returns the stored plan without running the
// tree search at all (observable via PlanInvocations). With a directory
// configured, plans also persist across processes in the serialize.go JSON
// format.

// CacheKey returns the content digest identifying the plan PlanSPST would
// produce for these inputs. Options are normalized first, so e.g. ChunkSize 0
// and 16 share an entry. Workers and BatchSize are part of the key: batched
// planning trades staleness for speed, so different settings legitimately
// produce different plans.
func CacheKey(rel *comm.Relation, topo *topology.Topology, bytesPerVertex int64, opts SPSTOptions) string {
	opts = opts.withDefaults()
	h := sha256.New()
	hashStr(h, "dgcl-spst-plan-v1")
	hashInts(h, int64(rel.K), bytesPerVertex)
	for src := 0; src < rel.K; src++ {
		for dst := 0; dst < rel.K; dst++ {
			vs := rel.Send[src][dst]
			hashInts(h, int64(len(vs)))
			for _, v := range vs {
				hashInts(h, int64(v))
			}
		}
	}
	hashTopology(h, topo)
	hashInts(h, opts.Seed, int64(opts.ChunkSize), int64(opts.Workers), int64(opts.BatchSize),
		boolInt(opts.DisableForwarding), boolInt(opts.TreePerSource))
	return hex.EncodeToString(h.Sum(nil))
}

// hashTopology digests everything the cost model reads: the GPU->node
// mapping and every connection's endpoints, class and bandwidth. Channel
// routing is deterministic given these, so they pin the whole Model.
func hashTopology(h hash.Hash, topo *topology.Topology) {
	hashStr(h, topo.Name)
	hashInts(h, int64(topo.NumGPUs()), int64(topo.NumMachines()), int64(len(topo.Nodes())))
	for g := 0; g < topo.NumGPUs(); g++ {
		hashInts(h, int64(topo.GPUNode(g)))
	}
	for _, n := range topo.Nodes() {
		hashInts(h, int64(n.Kind), int64(n.Machine))
	}
	for _, c := range topo.Conns() {
		hashInts(h, int64(c.A), int64(c.B), int64(c.Type), int64(math.Float64bits(c.Bandwidth)))
	}
}

func hashStr(h hash.Hash, s string) {
	hashInts(h, int64(len(s)))
	h.Write([]byte(s))
}

func hashInts(h hash.Hash, vs ...int64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// PlanCache memoizes PlanSPST results by content key. The zero value is not
// usable; construct with NewPlanCache. Safe for concurrent use. Cached plans
// are shared pointers and must be treated as immutable, which every consumer
// in this module already does.
type PlanCache struct {
	dir    string // "" = in-memory only
	mu     sync.Mutex
	mem    map[string]*Plan
	hits   atomic.Int64
	misses atomic.Int64
}

// NewPlanCache returns a plan cache. With dir non-empty, plans are also
// written to (and read from) dir as <key>.json files in the serialize.go
// format; the directory is created on first store.
func NewPlanCache(dir string) *PlanCache {
	return &PlanCache{dir: dir, mem: make(map[string]*Plan)}
}

// Stats returns the number of cache hits and misses so far.
func (c *PlanCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// PlanSPST returns the cached plan for the inputs, or plans and stores it.
// The returned State is rebuilt by replay on hits; its Cost matches the §5.1
// model of the plan (planner-state and replayed costs agree to within
// floating-point association order).
func (c *PlanCache) PlanSPST(rel *comm.Relation, topo *topology.Topology, bytesPerVertex int64, opts SPSTOptions) (*Plan, *State, error) {
	if topo.NumGPUs() != rel.K {
		return nil, nil, fmt.Errorf("core: topology has %d GPUs, relation %d", topo.NumGPUs(), rel.K)
	}
	if bytesPerVertex < 1 {
		return nil, nil, fmt.Errorf("core: bytesPerVertex must be >= 1, got %d", bytesPerVertex)
	}
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	key := CacheKey(rel, topo, bytesPerVertex, opts)
	if plan := c.lookup(key, rel.K); plan != nil {
		c.hits.Add(1)
		m, err := NewModel(topo)
		if err != nil {
			return nil, nil, err
		}
		return plan, ReplayState(m, plan), nil
	}
	c.misses.Add(1)
	plan, state, err := PlanSPST(rel, topo, bytesPerVertex, opts)
	if err != nil {
		return nil, nil, err
	}
	c.store(key, plan)
	return plan, state, nil
}

func (c *PlanCache) lookup(key string, k int) *Plan {
	c.mu.Lock()
	plan := c.mem[key]
	c.mu.Unlock()
	if plan != nil {
		return plan
	}
	if c.dir == "" {
		return nil
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	plan, err = ReadPlanJSON(f)
	// A stale or damaged file is a miss, not an error: replanning overwrites it.
	if err != nil || plan.K != k {
		return nil
	}
	c.mu.Lock()
	c.mem[key] = plan
	c.mu.Unlock()
	return plan
}

func (c *PlanCache) store(key string, plan *Plan) {
	c.mu.Lock()
	c.mem[key] = plan
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	// Persistence is best-effort: an unwritable cache directory degrades to
	// in-memory caching rather than failing planning.
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "plan-*.tmp")
	if err != nil {
		return
	}
	if err := plan.WriteJSON(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

func (c *PlanCache) path(key string) string {
	return filepath.Join(c.dir, "spst-"+key[:32]+".json")
}
