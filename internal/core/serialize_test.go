package core

import (
	"bytes"
	"strings"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	g := graph.CommunityGraph(400, 12, 4, 0.8, 1)
	p, _ := partition.KWay(g, 8, partition.Options{Seed: 1})
	rel, _ := comm.Build(g, p)
	plan, _, err := PlanSPST(rel, topology.DGX1(), 256, SPSTOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != plan.K || got.BytesPerVertex != plan.BytesPerVertex || got.Algorithm != plan.Algorithm {
		t.Fatal("header changed in roundtrip")
	}
	if got.NumStages() != plan.NumStages() || got.TotalBytes() != plan.TotalBytes() {
		t.Fatal("stages changed in roundtrip")
	}
	// The deserialized plan still validates against the relation.
	if err := got.Validate(rel); err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(topology.DGX1())
	if CostOfPlan(m, got) != CostOfPlan(m, plan) {
		t.Fatal("cost changed in roundtrip")
	}
}

func TestReadPlanJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"k":0,"bytes_per_vertex":4,"stages":[]}`,
		`{"k":4,"bytes_per_vertex":0,"stages":[]}`,
		`{"k":4,"bytes_per_vertex":4,"stages":[[{"Src":0,"Dst":9,"Vertices":[1]}]]}`,
		`{"k":4,"bytes_per_vertex":4,"stages":[[{"Src":2,"Dst":2,"Vertices":[1]}]]}`,
	}
	for _, c := range cases {
		if _, err := ReadPlanJSON(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestComputeStats(t *testing.T) {
	p := NewPlan(4, 100, "t")
	p.Stages = [][]Transfer{
		{{Src: 0, Dst: 1, Vertices: []int32{1, 2}}, {Src: 0, Dst: 2, Vertices: []int32{1}}},
		{{Src: 1, Dst: 3, Vertices: []int32{1}}},
	}
	owner := []int32{3, 0, 0, 0} // vertices 1,2 owned by GPU0
	s := p.ComputeStats(owner)
	if s.Stages != 2 || s.Transfers != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.VertexSends != 4 {
		t.Fatalf("vertex sends %d", s.VertexSends)
	}
	if s.UniqueDelivered != 4 { // (1,v1) (1,v2) (2,v1) (3,v1)
		t.Fatalf("unique %d", s.UniqueDelivered)
	}
	if s.RelayedSends != 1 { // GPU1 forwards vertex 1 it does not own
		t.Fatalf("relayed %d", s.RelayedSends)
	}
	if s.MaxFanoutPerGPU != 2 { // GPU0 sends twice in stage 1
		t.Fatalf("fanout %d", s.MaxFanoutPerGPU)
	}
	if s.BytesTotal != 400 || s.TableBytes != 4*4*2 {
		t.Fatalf("bytes %d tables %d", s.BytesTotal, s.TableBytes)
	}
}

func TestTopPairs(t *testing.T) {
	p := NewPlan(4, 10, "t")
	p.Stages = [][]Transfer{{
		{Src: 0, Dst: 1, Vertices: make([]int32, 5)},
		{Src: 2, Dst: 3, Vertices: make([]int32, 9)},
		{Src: 1, Dst: 2, Vertices: make([]int32, 1)},
	}}
	top := p.TopPairs(2)
	if len(top) != 2 || top[0].Src != 2 || top[0].Bytes != 90 || top[1].Src != 0 {
		t.Fatalf("top pairs %+v", top)
	}
	all := p.TopPairs(99)
	if len(all) != 3 {
		t.Fatalf("want all 3 pairs, got %d", len(all))
	}
}
