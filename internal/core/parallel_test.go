package core

import (
	"bytes"
	"fmt"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

// The serial/parallel equivalence battery. Batched planning is allowed to
// trade plan quality for staleness, but the trade is bounded and Workers=1
// BatchSize=1 is not a trade at all: it must reproduce the serial planner's
// plan byte for byte. Both properties are pinned here over a grid of seeded
// (graph, topology, partition) triples.

// planTriple is one seeded (graph, topology, partition) workload.
type planTriple struct {
	name string
	rel  *comm.Relation
	topo *topology.Topology
}

// partitionFor partitions the graph to match the topology (hierarchically
// across machines, like dgcl.BuildCommInfo).
func partitionFor(tb testing.TB, g *graph.Graph, topo *topology.Topology, seed int64) *comm.Relation {
	tb.Helper()
	k := topo.NumGPUs()
	var p *partition.Partition
	var err error
	if topo.NumMachines() > 1 {
		per := make([]int, topo.NumMachines())
		for d := 0; d < k; d++ {
			per[topo.GPUMachine(d)]++
		}
		p, err = partition.Hierarchical(g, per, partition.Options{Seed: seed})
	} else {
		p, err = partition.KWay(g, k, partition.Options{Seed: seed})
	}
	if err != nil {
		tb.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		tb.Fatal(err)
	}
	return rel
}

// equivalenceTriples builds the ~30 seeded triples of the battery: five
// graph families spanning community, power-law, locality and uniform degree
// structure, three fabrics (4-GPU quad, DGX-1, two-machine 16-GPU), two
// partition seeds each.
func equivalenceTriples(tb testing.TB) []planTriple {
	tb.Helper()
	graphs := []struct {
		name string
		gen  func(seed int64) *graph.Graph
	}{
		{"community", func(s int64) *graph.Graph { return graph.CommunityGraph(700, 12, 8, 0.8, s) }},
		{"rmat", func(s int64) *graph.Graph { return graph.RMAT(512, 4096, 0.57, 0.19, 0.19, s) }},
		{"locality", func(s int64) *graph.Graph { return graph.LocalityGraph(800, 10, s) }},
		{"chunglu", func(s int64) *graph.Graph { return graph.ChungLu(600, 8, 2.5, s) }},
		{"erdos", func(s int64) *graph.Graph { return graph.ErdosRenyi(500, 3000, s) }},
	}
	topos := []struct {
		name string
		topo *topology.Topology
	}{
		{"quad4", topology.SubDGX1(4)},
		{"dgx1", topology.DGX1()},
		{"dual16", topology.TwoMachineDGX1()},
	}
	var out []planTriple
	for _, gg := range graphs {
		for _, tt := range topos {
			for seed := int64(1); seed <= 2; seed++ {
				g := gg.gen(seed)
				out = append(out, planTriple{
					name: fmt.Sprintf("%s-%s-s%d", gg.name, tt.name, seed),
					rel:  partitionFor(tb, g, tt.topo, seed),
					topo: tt.topo,
				})
			}
		}
	}
	return out
}

// planJSONBytes canonically serializes a plan for byte comparison.
func planJSONBytes(tb testing.TB, p *Plan) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSerialIdentity: Workers=1 BatchSize=1 (and every spelling of
// the defaults) produces the serial plan bit for bit, including the cost
// state.
func TestParallelSerialIdentity(t *testing.T) {
	for _, tr := range equivalenceTriples(t) {
		serial, sst, err := PlanSPST(tr.rel, tr.topo, 1024, SPSTOptions{Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", tr.name, err)
		}
		want := planJSONBytes(t, serial)
		for _, opts := range []SPSTOptions{
			{Seed: 5, Workers: 1, BatchSize: 1},
			{Seed: 5, Workers: 1},
			{Seed: 5, BatchSize: 1},
		} {
			got, gst, err := PlanSPST(tr.rel, tr.topo, 1024, opts)
			if err != nil {
				t.Fatalf("%s: %v", tr.name, err)
			}
			if !bytes.Equal(want, planJSONBytes(t, got)) {
				t.Errorf("%s: Workers=%d BatchSize=%d plan differs from serial plan",
					tr.name, opts.Workers, opts.BatchSize)
			}
			if gst.Cost() != sst.Cost() {
				t.Errorf("%s: Workers=%d BatchSize=%d cost %v != serial %v",
					tr.name, opts.Workers, opts.BatchSize, gst.Cost(), sst.Cost())
			}
		}
	}
}

// Cost-ratio tolerances for batched planning, relative to the serial plan,
// tiered by how much staleness the configuration admits. Workers=1 with a
// batch only pipelines the searches (no concurrent-worker staleness) and
// lands within ~9% of serial across the battery. Real multi-worker configs
// with a small window stay within ~1.3×. Oversubscribed windows — many
// workers times a deep batch on graphs these tiny, where one wave is a
// visible fraction of all work — have been measured up to ~3× on the
// adversarial triples here (the evaluation-scale graphs stay near ~1.2 for
// the defaults, see DESIGN.md). All three bounds are contracts, not
// aspirations: a plan beyond them indicates a planner regression, and the
// failed-experiment history in DESIGN.md shows broken variants land at
// 3.5–4× even on large graphs.
const (
	batchOnlyCostTolerance = 1.35
	parallelCostTolerance  = 1.8
	oversubscribedCostTol  = 4.0
)

// TestParallelEquivalence: every Workers×Batch configuration plans a valid
// plan (full coverage, no phantom sends) whose modeled cost is within the
// documented tolerance of the serial plan's.
func TestParallelEquivalence(t *testing.T) {
	configs := []struct {
		w, b int
		tol  float64
	}{
		{1, 4, batchOnlyCostTolerance},
		{1, 32, batchOnlyCostTolerance},
		{2, 2, parallelCostTolerance},
		{4, 1, parallelCostTolerance},
		{4, 8, oversubscribedCostTol},
		{8, 2, oversubscribedCostTol},
	}
	for _, tr := range equivalenceTriples(t) {
		_, sst, err := PlanSPST(tr.rel, tr.topo, 1024, SPSTOptions{Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", tr.name, err)
		}
		for _, cfg := range configs {
			plan, pst, err := PlanSPST(tr.rel, tr.topo, 1024,
				SPSTOptions{Seed: 5, Workers: cfg.w, BatchSize: cfg.b})
			if err != nil {
				t.Fatalf("%s w%db%d: %v", tr.name, cfg.w, cfg.b, err)
			}
			if err := plan.Validate(tr.rel); err != nil {
				t.Errorf("%s w%db%d: invalid plan: %v", tr.name, cfg.w, cfg.b, err)
			}
			if sst.Cost() <= 0 {
				continue // empty relation: nothing to compare
			}
			ratio := pst.Cost() / sst.Cost()
			if ratio > cfg.tol {
				t.Errorf("%s w%db%d: cost ratio %.4f exceeds tolerance %.2f",
					tr.name, cfg.w, cfg.b, ratio, cfg.tol)
			}
			m, err := NewModel(tr.topo)
			if err != nil {
				t.Fatal(err)
			}
			if got := CostOfPlan(m, plan); !almostEqual(got, pst.Cost(), 1e-9*pst.Cost()+1e-18) {
				t.Errorf("%s w%db%d: replayed cost %v != planner state cost %v",
					tr.name, cfg.w, cfg.b, got, pst.Cost())
			}
		}
	}
}

// TestParallelDeterminism: the batched planner is deterministic — goroutine
// scheduling must not leak into plans. Two runs of the same configuration
// serialize identically.
func TestParallelDeterminism(t *testing.T) {
	g := graph.CommunityGraph(900, 14, 8, 0.8, 3)
	topo := topology.TwoMachineDGX1()
	rel := partitionFor(t, g, topo, 3)
	for _, cfg := range []struct{ w, b int }{{4, 4}, {8, 1}, {2, 16}} {
		opts := SPSTOptions{Seed: 9, Workers: cfg.w, BatchSize: cfg.b}
		a, ast, err := PlanSPST(rel, topo, 512, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, bst, err := PlanSPST(rel, topo, 512, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(planJSONBytes(t, a), planJSONBytes(t, b)) {
			t.Errorf("w%db%d: two runs produced different plans", cfg.w, cfg.b)
		}
		if ast.Cost() != bst.Cost() {
			t.Errorf("w%db%d: two runs produced different costs", cfg.w, cfg.b)
		}
	}
}

// TestParallelAblationsRouteSerial: the ablation modes bypass wave planning
// (forwarding-free plans never read link state) but must still accept
// Workers/BatchSize without changing their output.
func TestParallelAblationsRouteSerial(t *testing.T) {
	g := graph.CommunityGraph(400, 10, 4, 0.8, 2)
	topo := topology.DGX1()
	rel := partitionFor(t, g, topo, 2)
	serial, _, err := PlanSPST(rel, topo, 256, SPSTOptions{Seed: 1, DisableForwarding: true})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := PlanSPST(rel, topo, 256, SPSTOptions{Seed: 1, DisableForwarding: true, Workers: 4, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(planJSONBytes(t, serial), planJSONBytes(t, par)) {
		t.Error("DisableForwarding plan changed under Workers/BatchSize")
	}
}
