package core

import (
	"math"
	"sync"
)

// Parallel batched SPST planning.
//
// The serial planner routes one work item at a time against a single mutable
// State, so nothing can run concurrently and every Dijkstra relaxation pays a
// full Incremental() hop walk. planWaves processes the (already shuffled)
// work items in waves of Workers*BatchSize items:
//
//   - At the start of a wave the accumulated link loads are frozen. Each
//     worker plans its batch of BatchSize items against that snapshot PLUS
//     its own local load overlay, so within a batch the search semantics are
//     exactly serial (branches of one tree and consecutive items of one
//     batch see each other's contention). What a worker cannot see is the
//     load added concurrently by the other workers of the wave — staleness
//     is bounded by one wave, because every wave commits all load deltas (in
//     deterministic item order) before the next begins.
//   - The frozen base lets a worker keep per-hop contended *times* instead of
//     byte volumes (cachedCost): marginal-cost queries — where the planner
//     spends its time — become an add and a compare per hop with no division,
//     and commits bump only the touched slots. This speeds planning up even
//     with Workers=1.
//   - Workers never write shared data during a wave, so for a fixed
//     (Seed, ChunkSize, Workers, BatchSize) the plan is deterministic
//     regardless of goroutine scheduling.
//
// Workers=1 with BatchSize=1 takes the planSerial path in PlanSPST and
// reproduces the serial plans bit-for-bit. Workers=1 with a larger BatchSize
// is "batched serial": the same routing decisions as the serial planner up
// to floating-point tie-breaks (the overlay multiplies by precomputed
// reciprocal bandwidths where the serial path divides).

// edgeOp is one committed tree edge: the item's vertices travel src->dst at
// the given stage.
type edgeOp struct {
	stage, src, dst int32
}

// cachedCost is a worker's view of the link loads: the wave's frozen base
// State plus the load the worker itself committed this wave.
//
// Instead of byte volumes it tracks *times*: curTime[stage][hopSlot] is the
// hop's contended transfer time, (baseVol+localVol)/bandwidth, kept valid in
// place (adds bump only the touched slots by a precomputed weight/bandwidth
// delta). A marginal-cost query is then two loads, an add and a compare per
// hop — no division, no invalidation bookkeeping — where the serial
// State.Incremental reloads volumes and divides on every call.
type cachedCost struct {
	m      *Model
	base   *State // frozen for the duration of a wave; read-only
	weight float64
	// loadScale inflates the worker's own committed load: the wave's items are
	// a shuffled sample split evenly across workers, so a worker's own load is
	// an unbiased 1/Workers estimate of the load the whole wave is placing on
	// each link. Scaling it makes the worker steer around contention the other
	// workers are creating concurrently, which a frozen snapshot cannot show
	// (and, within one item, spreads the tree the way the peers' contention
	// eventually would). The scale is Workers/2, not Workers: the full count
	// double-prices the worker's own share of the wave and herds all workers
	// off shared links at once — half the count measured best across both the
	// evaluation-scale graphs and the small adversarial battery. Queries still
	// price the candidate edge at the item's own weight.
	loadScale float64
	wInv      []float64   // weight / bandwidth per hop slot; rebuilt per item
	addInv    []float64   // loadScale * weight / bandwidth per hop slot
	curTime   [][]float64 // per stage: contended time per hop slot
	stageMax  []float64   // per stage: current stage time
}

func newCachedCost(m *Model, loadScale float64) *cachedCost {
	return &cachedCost{
		m:         m,
		loadScale: loadScale,
		wInv:      make([]float64, len(m.bw)),
		addInv:    make([]float64, len(m.bw)),
	}
}

// reset points the view at a new frozen base and drops the local overlay,
// re-deriving the per-hop times from the base volumes (O(stages·hops), dwarfed
// by planning a single item).
func (c *cachedCost) reset(base *State) {
	c.base = base
	c.stageMax = c.stageMax[:0]
	c.curTime = c.curTime[:0]
	for s := 0; s < base.NumStages(); s++ {
		c.grow()
		ct := c.curTime[s]
		bvol := base.stageVol[s]
		for i := range ct {
			ct[i] = bvol[i] * c.m.invBW[i]
		}
		c.stageMax[s] = base.stageMax[s]
	}
}

// setWeight switches the per-vertex-chunk weight the queries price in,
// refreshing the per-slot weight/bandwidth deltas.
func (c *cachedCost) setWeight(weight float64) {
	if c.weight == weight {
		return
	}
	c.weight = weight
	for i, inv := range c.m.invBW {
		c.wInv[i] = weight * inv
		c.addInv[i] = c.loadScale * weight * inv
	}
}

// grow appends one (zeroed) stage to the view.
func (c *cachedCost) grow() {
	s := len(c.stageMax)
	c.stageMax = append(c.stageMax, 0)
	if s < cap(c.curTime) {
		c.curTime = c.curTime[:s+1]
		if ct := c.curTime[s]; ct != nil {
			for i := range ct {
				ct[i] = 0
			}
			return
		}
		c.curTime[s] = make([]float64, len(c.m.bw))
	} else {
		c.curTime = append(c.curTime, make([]float64, len(c.m.bw)))
	}
}

// incremental mirrors State.Incremental against the combined base+local view.
func (c *cachedCost) incremental(stage, src, dst int) float64 {
	if stage >= len(c.stageMax) {
		// Untouched empty stage: no contention, the bottleneck hop decides.
		return c.weight * c.m.invBottleneck[src][dst]
	}
	var hm float64
	ct := c.curTime[stage]
	for _, h := range c.m.hops[src][dst] {
		if t := ct[h] + c.wInv[h]; t > hm {
			hm = t
		}
	}
	if sm := c.stageMax[stage]; hm > sm {
		return hm - sm
	}
	return 0
}

// add commits the current weight on channel src->dst at the stage to the
// local overlay.
func (c *cachedCost) add(stage, src, dst int) {
	for len(c.stageMax) <= stage {
		c.grow()
	}
	ct := c.curTime[stage]
	sm := c.stageMax[stage]
	for _, h := range c.m.hops[src][dst] {
		ct[h] += c.addInv[h]
		if ct[h] > sm {
			sm = ct[h]
		}
	}
	c.stageMax[stage] = sm
}

// waveWorker plans one batch per wave. The edge arena and item offsets are
// reused across waves; committed slices point into (possibly superseded)
// arena backing arrays, which stay valid because they are never appended to.
type waveWorker struct {
	ts     *treeSearch
	cc     *cachedCost
	arena  []edgeOp
	starts []int32 // per planned item, start offset into arena
}

// plan plans the worker's own batch, wave[lo:hi), against the frozen base.
func (w *waveWorker) plan(wave []workItem, lo, hi int, bytesPerVertex int64, base *State) {
	w.arena = w.arena[:0]
	w.starts = w.starts[:0]
	w.cc.reset(base)
	for i := lo; i < hi; i++ {
		it := &wave[i]
		w.starts = append(w.starts, int32(len(w.arena)))
		w.cc.setWeight(float64(int64(len(it.vertices)) * bytesPerVertex))
		w.arena = w.ts.growTreeWave(w.cc, it, w.arena)
	}
	w.starts = append(w.starts, int32(len(w.arena)))
}

// edges returns the tree committed for the i-th item of the worker's batch.
func (w *waveWorker) edges(i int) []edgeOp {
	return w.arena[w.starts[i]:w.starts[i+1]]
}

// planWaves is the batched planner driver; see the comment at the top of the
// file for the staleness model.
func planWaves(m *Model, items []workItem, bytesPerVertex int64, opts SPSTOptions, pb *planBuilder) *State {
	state := NewState(m)
	batch := opts.BatchSize
	waveSize := opts.Workers * batch
	loadScale := 1.0
	if opts.Workers > 1 {
		loadScale = float64(opts.Workers) / 2
	}
	workers := make([]*waveWorker, opts.Workers)
	for i := range workers {
		workers[i] = &waveWorker{ts: newTreeSearch(m.K), cc: newCachedCost(m, loadScale)}
	}
	for base := 0; base < len(items); base += waveSize {
		end := base + waveSize
		if end > len(items) {
			end = len(items)
		}
		// Shard the wave into per-worker batches and plan them against the
		// frozen state.
		active := 0
		var wg sync.WaitGroup
		for wi := 0; wi < opts.Workers; wi++ {
			lo := base + wi*batch
			if lo >= end {
				break
			}
			hi := lo + batch
			if hi > end {
				hi = end
			}
			active++
			if wi == opts.Workers-1 || hi == end {
				// Plan the last shard on this goroutine.
				workers[wi].plan(items[base:end], lo-base, hi-base, bytesPerVertex, state)
				break
			}
			wg.Add(1)
			go func(w *waveWorker, lo, hi int) {
				defer wg.Done()
				w.plan(items[base:end], lo, hi, bytesPerVertex, state)
			}(workers[wi], lo-base, hi-base)
		}
		wg.Wait()
		// Commit the wave's load deltas and transfers in item order, so the
		// result is independent of how goroutines were scheduled.
		for wi := 0; wi < active; wi++ {
			w := workers[wi]
			lo := base + wi*batch
			for i := 0; i < len(w.starts)-1; i++ {
				it := &items[lo+i]
				weight := float64(int64(len(it.vertices)) * bytesPerVertex)
				for _, e := range w.edges(i) {
					state.Add(int(e.stage), int(e.src), int(e.dst), weight)
					pb.add(int(e.stage), int(e.src), int(e.dst), it.vertices)
				}
			}
		}
	}
	return state
}

// growTreeWave is growTree against a worker's cached cost view: edge weights
// come from memoized queries, commits go to the local overlay, and the tree
// is recorded for replay onto the shared state at wave commit.
func (ts *treeSearch) growTreeWave(cc *cachedCost, it *workItem, out []edgeOp) []edgeOp {
	k := ts.k
	for i := 0; i < k; i++ {
		ts.inTree[i] = false
		ts.needed[i] = false
	}
	ts.inTree[it.src] = true
	ts.depth[it.src] = 0
	path := ts.parent[:0:0] // scratch; reallocated on first use, then reused
	remaining := 0
	for _, d := range it.dsts {
		if !ts.inTree[d] {
			ts.needed[d] = true
			remaining++
		}
	}
	for remaining > 0 {
		dest := ts.dijkstraWave(cc)
		if dest < 0 {
			for d := 0; d < k; d++ {
				if ts.needed[d] {
					cc.add(0, it.src, d)
					out = append(out, edgeOp{0, int32(it.src), int32(d)})
					ts.needed[d] = false
					remaining--
				}
			}
			return out
		}
		path = path[:0]
		for n := dest; ; n = ts.parent[n] {
			path = append(path, n)
			if ts.inTree[n] {
				break
			}
		}
		out = ts.commitPathWave(cc, path, out, &remaining)
		// Zero-sweep: a remaining destination reachable by a zero-marginal
		// direct edge from a tree node can be committed without re-running the
		// search — zero is the global minimum, so the edge is a valid greedy
		// choice, and it is the edge a fresh search would settle (free direct
		// edges win before any relayed path is explored). Shallow tree nodes
		// are preferred so the sweep does not stretch the stage count. This
		// collapses the one-search-per-destination loop whenever a stage's
		// maximum dwarfs the item's marginal, the common case on loaded
		// fabrics.
		for remaining > 0 {
			committed := false
			for d := 0; d < k && remaining > 0; d++ {
				if !ts.needed[d] || ts.dist[d] != 0 {
					continue
				}
				from, fromDepth := -1, 0
				for u := 0; u < k; u++ {
					if !ts.inTree[u] || u == d {
						continue
					}
					if cc.incremental(ts.depth[u], u, d) == 0 {
						from, fromDepth = u, ts.depth[u]
						break
					}
				}
				if from < 0 {
					continue
				}
				cc.add(fromDepth, from, d)
				out = append(out, edgeOp{int32(fromDepth), int32(from), int32(d)})
				ts.inTree[d] = true
				ts.depth[d] = fromDepth + 1
				ts.needed[d] = false
				remaining--
				committed = true
			}
			if !committed {
				break // no free direct edge left: fall back to a fresh search
			}
		}
	}
	return out
}

// commitPathWave commits a leaf..root path onto the worker's view, marking
// its nodes as tree members and recording the edges for the wave commit.
func (ts *treeSearch) commitPathWave(cc *cachedCost, path []int, out []edgeOp, remaining *int) []edgeOp {
	for i := len(path) - 1; i > 0; i-- {
		u, v := path[i], path[i-1]
		cc.add(ts.depth[u], u, v)
		out = append(out, edgeOp{int32(ts.depth[u]), int32(u), int32(v)})
		ts.inTree[v] = true
		ts.depth[v] = ts.depth[u] + 1
		if ts.needed[v] {
			ts.needed[v] = false
			*remaining--
		}
	}
	return out
}

// dijkstraWave mirrors dijkstra with memoized edge weights.
func (ts *treeSearch) dijkstraWave(cc *cachedCost) int {
	k := ts.k
	for i := 0; i < k; i++ {
		ts.dist[i] = math.Inf(1)
		ts.settled[i] = false
		ts.parent[i] = -1
		if ts.inTree[i] {
			ts.dist[i] = 0
			ts.pdepth[i] = ts.depth[i]
		}
	}
	for {
		u := -1
		best := math.Inf(1)
		for i := 0; i < k; i++ {
			if ts.settled[i] {
				continue
			}
			if d := ts.dist[i]; d < best {
				u, best = i, d
				if d == 0 {
					// 0 is the global minimum (marginals are >= 0) and the
					// full scan picks the lowest-index minimum: stop here.
					break
				}
			}
		}
		if u < 0 {
			return -1
		}
		ts.settled[u] = true
		if ts.needed[u] {
			return u
		}
		du := ts.dist[u]
		for v := 0; v < k; v++ {
			// Marginal costs are >= 0, so a node at dist <= dist[u] can never
			// be improved from u: skip the cost query entirely. (Nodes at dist
			// 0 are common once a stage's maximum dwarfs one item's marginal.)
			if v == u || ts.dist[v] <= du || ts.settled[v] || ts.inTree[v] {
				continue
			}
			if nd := du + cc.incremental(ts.pdepth[u], u, v); nd < ts.dist[v] {
				ts.dist[v] = nd
				ts.pdepth[v] = ts.pdepth[u] + 1
				ts.parent[v] = u
			}
		}
	}
}
