// Package core implements the paper's primary contribution: communication
// planning for distributed GNN training. It defines the staged communication
// plan representation (§6.1's (di, dj, k, Ts, Tr) tuples), the stage-based
// cost model of §5.1, and the shortest path spanning tree (SPST) planning
// algorithm of §5.2, including the non-atomic backward sub-stage split of
// §6.2 and the ablation switches called out in DESIGN.md.
package core

import (
	"fmt"
	"sort"

	"dgcl/internal/comm"
)

// PairID identifies an ordered GPU pair within a plan (src*K + dst).
type PairID int32

// MakePair builds a PairID.
func MakePair(k, src, dst int) PairID { return PairID(src*k + dst) }

// Src returns the sending GPU of the pair.
func (p PairID) Src(k int) int { return int(p) / k }

// Dst returns the receiving GPU of the pair.
func (p PairID) Dst(k int) int { return int(p) % k }

// Transfer is one entry of a stage: GPU Src sends the embeddings of Vertices
// (global ids, in send-buffer order) to GPU Dst. It corresponds to the
// paper's (di, dj, k, Ts) tuple; the receive table Tr is the same list seen
// from the receiver.
type Transfer struct {
	Src, Dst int
	Vertices []int32
}

// Plan is a staged communication schedule for one graphAllgather. Stage k
// (1-based in the paper; index k-1 here) contains the transfers whose tree
// edges are k hops from their roots. All transfers within a stage may run
// concurrently; stages run sequentially.
type Plan struct {
	K              int
	BytesPerVertex int64
	Stages         [][]Transfer
	Algorithm      string // which planner produced it ("spst", "p2p", ...)
}

// NewPlan returns an empty plan for k GPUs.
func NewPlan(k int, bytesPerVertex int64, algorithm string) *Plan {
	return &Plan{K: k, BytesPerVertex: bytesPerVertex, Algorithm: algorithm}
}

// planBuilder accumulates vertices per (stage, pair) and emits a normalized
// Plan.
type planBuilder struct {
	k      int
	stages []map[PairID][]int32
}

func newPlanBuilder(k int) *planBuilder { return &planBuilder{k: k} }

func (b *planBuilder) add(stage int, src, dst int, vertices []int32) {
	for len(b.stages) <= stage {
		b.stages = append(b.stages, make(map[PairID][]int32))
	}
	p := MakePair(b.k, src, dst)
	b.stages[stage] = ensureStage(b.stages[stage])
	b.stages[stage][p] = append(b.stages[stage][p], vertices...)
}

func ensureStage(m map[PairID][]int32) map[PairID][]int32 {
	if m == nil {
		return make(map[PairID][]int32)
	}
	return m
}

func (b *planBuilder) build(bytesPerVertex int64, algorithm string) *Plan {
	p := NewPlan(b.k, bytesPerVertex, algorithm)
	for _, st := range b.stages {
		var ts []Transfer
		pairs := make([]PairID, 0, len(st))
		for pair := range st {
			pairs = append(pairs, pair)
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
		for _, pair := range pairs {
			ts = append(ts, Transfer{Src: pair.Src(b.k), Dst: pair.Dst(b.k), Vertices: st[pair]})
		}
		p.Stages = append(p.Stages, ts)
	}
	// Trim trailing empty stages.
	for len(p.Stages) > 0 && len(p.Stages[len(p.Stages)-1]) == 0 {
		p.Stages = p.Stages[:len(p.Stages)-1]
	}
	return p
}

// NumStages returns the number of stages.
func (p *Plan) NumStages() int { return len(p.Stages) }

// TotalBytes returns the total bytes moved by the plan (forwarded vertices
// count once per hop, as they occupy links on every hop).
func (p *Plan) TotalBytes() int64 {
	var n int64
	for _, st := range p.Stages {
		for _, t := range st {
			n += int64(len(t.Vertices)) * p.BytesPerVertex
		}
	}
	return n
}

// TableMemoryBytes returns the memory needed for the send/receive tables of
// §6.1: 4 bytes per vertex id, counted twice (sender's Ts plus receiver's
// Tr). The same tables are reused for every layer and for the backward pass.
func (p *Plan) TableMemoryBytes() int64 {
	var ids int64
	for _, st := range p.Stages {
		for _, t := range st {
			ids += int64(len(t.Vertices))
		}
	}
	return ids * 4 * 2
}

// Validate checks that the plan is executable against the relation: every
// transfer's sender owns the vertex or has received it in an earlier stage,
// no duplicate delivery, and after the final stage every GPU holds exactly
// its remote set.
func (p *Plan) Validate(rel *comm.Relation) error {
	if p.K != rel.K {
		return fmt.Errorf("core: plan K=%d relation K=%d", p.K, rel.K)
	}
	have := make([]map[int32]bool, p.K)
	for d := 0; d < p.K; d++ {
		have[d] = make(map[int32]bool)
		for _, v := range rel.Local[d] {
			have[d][v] = true
		}
	}
	for si, st := range p.Stages {
		type delivery struct {
			dst int
			v   int32
		}
		var pending []delivery
		for _, t := range st {
			if t.Src == t.Dst {
				return fmt.Errorf("core: stage %d transfer to self on GPU %d", si+1, t.Src)
			}
			if t.Src < 0 || t.Src >= p.K || t.Dst < 0 || t.Dst >= p.K {
				return fmt.Errorf("core: stage %d transfer with bad endpoints %d->%d", si+1, t.Src, t.Dst)
			}
			for _, v := range t.Vertices {
				if !have[t.Src][v] {
					return fmt.Errorf("core: stage %d GPU %d sends vertex %d it does not hold", si+1, t.Src, v)
				}
				pending = append(pending, delivery{t.Dst, v})
			}
		}
		// Within a stage all sends read state from before the stage.
		for _, d := range pending {
			if have[d.dst][d.v] {
				return fmt.Errorf("core: vertex %d delivered to GPU %d twice", d.v, d.dst)
			}
			have[d.dst][d.v] = true
		}
	}
	for d := 0; d < p.K; d++ {
		for _, v := range rel.Remote[d] {
			if !have[d][v] {
				return fmt.Errorf("core: plan never delivers vertex %d to GPU %d", v, d)
			}
		}
	}
	return nil
}

// SubStage is one non-atomic backward sub-stage: the set of reversed
// transfers that may run concurrently without two senders delivering
// gradients to the same receiver (hence no atomic reduction is needed).
type SubStage []Transfer

// BackwardSchedule returns the backward-pass schedule: stages in reverse
// order with send/receive roles swapped (gradients flow opposite to
// embeddings, §6.1). With nonAtomic=true each backward stage's receive
// tables are partitioned into sub-stages such that any (receiver, vertex)
// pair receives a gradient from at most one GPU per sub-stage (§6.2): every
// GPU pair stays active in every sub-stage with a slice of its table, so the
// split removes write conflicts without serializing independent transfers.
// With nonAtomic=false each stage is a single sub-stage and the runtime must
// use atomic accumulation.
func (p *Plan) BackwardSchedule(nonAtomic bool) [][]SubStage {
	out := make([][]SubStage, 0, len(p.Stages))
	for si := len(p.Stages) - 1; si >= 0; si-- {
		reversed := make([]Transfer, len(p.Stages[si]))
		for i, t := range p.Stages[si] {
			reversed[i] = Transfer{Src: t.Dst, Dst: t.Src, Vertices: t.Vertices}
		}
		if !nonAtomic {
			out = append(out, []SubStage{reversed})
			continue
		}
		// slot[(dst, v)] counts how many senders already deliver v's gradient
		// to dst; the next sender goes to the next sub-stage.
		type key struct {
			dst int
			v   int32
		}
		slot := make(map[key]int)
		// subVerts[l][pairIdx] collects the vertex slice of reversed[pairIdx]
		// that runs in sub-stage l.
		var subVerts []map[int][]int32
		for ti, t := range reversed {
			for _, v := range t.Vertices {
				k := key{t.Dst, v}
				l := slot[k]
				slot[k] = l + 1
				for len(subVerts) <= l {
					subVerts = append(subVerts, make(map[int][]int32))
				}
				subVerts[l][ti] = append(subVerts[l][ti], v)
			}
		}
		subs := make([]SubStage, 0, len(subVerts))
		for _, m := range subVerts {
			var sub SubStage
			for ti := 0; ti < len(reversed); ti++ {
				if vs := m[ti]; len(vs) > 0 {
					sub = append(sub, Transfer{Src: reversed[ti].Src, Dst: reversed[ti].Dst, Vertices: vs})
				}
			}
			subs = append(subs, sub)
		}
		if len(subs) == 0 {
			subs = []SubStage{nil}
		}
		out = append(out, subs)
	}
	return out
}

// PairBytes returns per-ordered-pair transferred bytes summed over stages.
func (p *Plan) PairBytes() map[PairID]int64 {
	out := make(map[PairID]int64)
	for _, st := range p.Stages {
		for _, t := range st {
			out[MakePair(p.K, t.Src, t.Dst)] += int64(len(t.Vertices)) * p.BytesPerVertex
		}
	}
	return out
}

// String summarizes the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("Plan{%s, K=%d, stages=%d, bytes=%d}", p.Algorithm, p.K, p.NumStages(), p.TotalBytes())
}
