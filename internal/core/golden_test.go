package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/graph"
	"dgcl/internal/topology"
)

// Golden-plan regression tests: the planner's exact output for fixed seeded
// workloads is pinned byte-for-byte against JSON files in testdata/golden.
// Any change to shuffling, tie-breaking, cost arithmetic or serialization
// shows up as a diff here — deliberate planner changes must regenerate the
// files with
//
//	go test ./internal/core/ -run TestGoldenPlans -update
//
// and justify the diff in review.

var updateGolden = flag.Bool("update", false, "rewrite golden plan files instead of comparing")

// goldenCases are the pinned workloads: one community graph on the DGX-1 and
// one power-law graph on the two-machine fabric, across the serial planner,
// both ablations, and a batched-parallel configuration.
func goldenCases(t *testing.T) []struct {
	name string
	rel  relTopo
	opts SPSTOptions
} {
	t.Helper()
	dgx := relTopo{topo: topology.DGX1()}
	dgx.rel = partitionFor(t, graph.CommunityGraph(500, 12, 8, 0.85, 11), dgx.topo, 11)
	dual := relTopo{topo: topology.TwoMachineDGX1()}
	dual.rel = partitionFor(t, graph.RMAT(512, 4096, 0.57, 0.19, 0.19, 11), dual.topo, 11)
	return []struct {
		name string
		rel  relTopo
		opts SPSTOptions
	}{
		{"community-dgx1-serial", dgx, SPSTOptions{Seed: 11}},
		{"community-dgx1-chunk4", dgx, SPSTOptions{Seed: 11, ChunkSize: 4}},
		{"community-dgx1-noforward", dgx, SPSTOptions{Seed: 11, DisableForwarding: true}},
		{"community-dgx1-sourcetree", dgx, SPSTOptions{Seed: 11, TreePerSource: true}},
		{"community-dgx1-w4b4", dgx, SPSTOptions{Seed: 11, Workers: 4, BatchSize: 4}},
		{"rmat-dual16-serial", dual, SPSTOptions{Seed: 11}},
		{"rmat-dual16-w4b4", dual, SPSTOptions{Seed: 11, Workers: 4, BatchSize: 4}},
	}
}

type relTopo struct {
	rel  *comm.Relation
	topo *topology.Topology
}

func TestGoldenPlans(t *testing.T) {
	for _, tc := range goldenCases(t) {
		plan, _, err := PlanSPST(tc.rel.rel, tc.rel.topo, 1024, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := planJSONBytes(t, plan)
		path := filepath.Join("testdata", "golden", tc.name+".json")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with -update to create): %v", tc.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: plan differs from golden file %s (rerun with -update if the change is deliberate)",
				tc.name, path)
		}
	}
}

// TestGoldenPlansAreValid guards the golden files themselves: each must
// deserialize and validate against its relation, so a stale or hand-edited
// file cannot silently become the reference.
func TestGoldenPlansAreValid(t *testing.T) {
	for _, tc := range goldenCases(t) {
		path := filepath.Join("testdata", "golden", tc.name+".json")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		plan, err := ReadPlanJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: golden file does not deserialize: %v", tc.name, err)
		}
		if err := plan.Validate(tc.rel.rel); err != nil {
			t.Errorf("%s: golden plan invalid for its relation: %v", tc.name, err)
		}
	}
}
