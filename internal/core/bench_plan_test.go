package core

import (
	"fmt"
	"sync"
	"testing"

	"dgcl/internal/comm"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

// Planner benchmarks over three workload sizes. The CI bench-smoke tier
// (make bench-smoke) runs every case once and records the output as
// BENCH_plan.json; the acceptance bar is parallel-4 at least 2x faster than
// serial on the largest workload (orkut128-32, the 4-machine 32-GPU
// fabric). On a single-core runner the speedup is purely algorithmic — the
// frozen-snapshot cost cache and the zero-marginal sweep (parallel.go) do
// the work, and extra workers add wave concurrency on real machines.

// benchWorkload lazily builds and caches one named (relation, topology)
// workload; graph synthesis and partitioning dominate planning for the
// large cases and must not be re-run per benchmark iteration.
var benchWorkloads sync.Map // name -> *relTopo

func benchWorkload(b *testing.B, name string) *relTopo {
	b.Helper()
	if w, ok := benchWorkloads.Load(name); ok {
		return w.(*relTopo)
	}
	var g *graph.Graph
	var topo *topology.Topology
	var shape []int
	switch name {
	case "web64-16":
		g = graph.WebGoogle.Generate(64, 1)
		topo, _ = topology.ForGPUCount(16)
		shape = []int{8, 8}
	case "reddit32-16":
		g = graph.Reddit.Generate(32, 1)
		topo, _ = topology.ForGPUCount(16)
		shape = []int{8, 8}
	case "orkut128-32":
		g = graph.ComOrkut.Generate(128, 1)
		topo = topology.MultiMachineDGX1(4)
		shape = []int{8, 8, 8, 8}
	default:
		b.Fatalf("unknown bench workload %q", name)
	}
	p, err := partition.Hierarchical(g, shape, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		b.Fatal(err)
	}
	w := &relTopo{rel: rel, topo: topo}
	benchWorkloads.Store(name, w)
	return w
}

func BenchmarkPlanSPST(b *testing.B) {
	for _, name := range []string{"web64-16", "reddit32-16", "orkut128-32"} {
		w := benchWorkload(b, name)
		configs := []struct {
			label string
			opts  SPSTOptions
		}{
			{"serial", SPSTOptions{Seed: 1}},
			{"parallel-2", SPSTOptions{Seed: 1, Workers: 2}},
			{"parallel-4", SPSTOptions{Seed: 1, Workers: 4}},
			{"parallel-4x8", SPSTOptions{Seed: 1, Workers: 4, BatchSize: 8}},
		}
		for _, cfg := range configs {
			b.Run(fmt.Sprintf("%s/%s", name, cfg.label), func(b *testing.B) {
				var cost float64
				for i := 0; i < b.N; i++ {
					_, state, err := PlanSPST(w.rel, w.topo, 1024, cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					cost = state.Cost()
				}
				b.ReportMetric(cost*1e3, "modeled-ms")
			})
		}
	}
}

// BenchmarkPlanCacheWarm prices a warm content-addressed lookup (hash the
// inputs, replay the plan's cost state) against replanning from scratch.
func BenchmarkPlanCacheWarm(b *testing.B) {
	w := benchWorkload(b, "reddit32-16")
	c := NewPlanCache("")
	if _, _, err := c.PlanSPST(w.rel, w.topo, 1024, SPSTOptions{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.PlanSPST(w.rel, w.topo, 1024, SPSTOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
