package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dgcl/internal/comm"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/topology"
)

// buildRelation is a test helper: generate a graph, partition it to k parts,
// and derive the communication relation.
func buildRelation(t testing.TB, g *graph.Graph, k int, seed int64) *comm.Relation {
	t.Helper()
	p, err := partition.KWay(g, k, partition.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestSPSTProducesValidPlan(t *testing.T) {
	g := graph.CommunityGraph(800, 16, 8, 0.8, 1)
	rel := buildRelation(t, g, 8, 1)
	topo := topology.DGX1()
	plan, state, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(rel); err != nil {
		t.Fatal(err)
	}
	if state.Cost() <= 0 {
		t.Fatal("plan cost must be positive for non-empty relation")
	}
	m, _ := NewModel(topo)
	if got := CostOfPlan(m, plan); !almostEqual(got, state.Cost(), 1e-9*state.Cost()) {
		t.Fatalf("replayed cost %v != planner state cost %v", got, state.Cost())
	}
}

func TestSPSTChunkOneValid(t *testing.T) {
	g := graph.Ring(64)
	rel := buildRelation(t, g, 4, 2)
	plan, _, err := PlanSPST(rel, topology.SubDGX1(4), 256, SPSTOptions{Seed: 2, ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(rel); err != nil {
		t.Fatal(err)
	}
}

func TestSPSTBeatsP2PWhenSlowLinksExist(t *testing.T) {
	// The headline claim: on the DGX-1, where GPU pairs across sockets talk
	// over slow PCIe-QPI-PCIe, SPST's forwarding over NVLink beats direct
	// peer-to-peer.
	g := graph.CommunityGraph(2000, 32, 12, 0.7, 3)
	rel := buildRelation(t, g, 8, 3)
	topo := topology.DGX1()
	m, _ := NewModel(topo)

	plan, state, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(rel); err != nil {
		t.Fatal(err)
	}
	p2p := planP2PForTest(rel, 1024)
	p2pCost := CostOfPlan(m, p2p)
	if state.Cost() >= p2pCost {
		t.Fatalf("SPST cost %v should beat P2P cost %v on DGX-1", state.Cost(), p2pCost)
	}
	// The paper reports ~4.45x average reduction; demand at least 1.5x here.
	if p2pCost/state.Cost() < 1.5 {
		t.Fatalf("SPST/P2P improvement only %.2fx", p2pCost/state.Cost())
	}
}

// planP2PForTest mirrors baselines.PlanP2P without importing it (avoiding an
// import cycle in tests).
func planP2PForTest(rel *comm.Relation, bytesPerVertex int64) *Plan {
	p := NewPlan(rel.K, bytesPerVertex, "p2p")
	var stage []Transfer
	for src := 0; src < rel.K; src++ {
		for dst := 0; dst < rel.K; dst++ {
			if len(rel.Send[src][dst]) > 0 {
				stage = append(stage, Transfer{Src: src, Dst: dst, Vertices: rel.Send[src][dst]})
			}
		}
	}
	if len(stage) > 0 {
		p.Stages = append(p.Stages, stage)
	}
	return p
}

func TestSPSTEqualsP2POnAllNVLinkQuad(t *testing.T) {
	// The paper: with 4 or fewer GPUs every pair has a direct NVLink and
	// DGCL matches peer-to-peer. SPST should not be (much) better or worse.
	g := graph.CommunityGraph(600, 16, 6, 0.8, 4)
	rel := buildRelation(t, g, 4, 4)
	topo := topology.SubDGX1(4)
	m, _ := NewModel(topo)
	_, state, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p2pCost := CostOfPlan(m, planP2PForTest(rel, 1024))
	ratio := p2pCost / state.Cost()
	if ratio < 0.95 {
		t.Fatalf("SPST (%.4g) should never be worse than P2P (%.4g) by >5%%", state.Cost(), p2pCost)
	}
	if ratio > 1.6 {
		t.Fatalf("on all-NVLink quad SPST (%.4g) should be close to P2P (%.4g)", state.Cost(), p2pCost)
	}
}

func TestSPSTForwardingAblation(t *testing.T) {
	// Disabling forwarding should never reduce the modeled cost on DGX-1.
	g := graph.CommunityGraph(1500, 24, 10, 0.75, 5)
	rel := buildRelation(t, g, 8, 5)
	topo := topology.DGX1()
	_, full, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	planNF, noFwd, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 5, DisableForwarding: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := planNF.Validate(rel); err != nil {
		t.Fatal(err)
	}
	if noFwd.Cost() < full.Cost() {
		t.Fatalf("no-forwarding cost %v beat full SPST %v", noFwd.Cost(), full.Cost())
	}
}

func TestSPSTTreePerSourceAblation(t *testing.T) {
	g := graph.CommunityGraph(1000, 20, 8, 0.8, 6)
	rel := buildRelation(t, g, 8, 6)
	topo := topology.DGX1()
	planTS, _, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 6, TreePerSource: true})
	if err != nil {
		t.Fatal(err)
	}
	// Source trees overshoot: vertices ride to GPUs that don't need them, so
	// the plan cannot Validate against the exact relation; instead verify
	// structure: every GPU's remote set is covered.
	covered := make([]map[int32]bool, rel.K)
	for d := range covered {
		covered[d] = map[int32]bool{}
	}
	for _, st := range planTS.Stages {
		for _, tr := range st {
			for _, v := range tr.Vertices {
				covered[tr.Dst][v] = true
			}
		}
	}
	for d := 0; d < rel.K; d++ {
		for _, v := range rel.Remote[d] {
			if !covered[d][v] {
				t.Fatalf("source-tree plan misses vertex %d for GPU %d", v, d)
			}
		}
	}
	if planTS.Algorithm != "spst-sourcetree" {
		t.Fatalf("algorithm tag %q", planTS.Algorithm)
	}
}

func TestSPSTDeterministic(t *testing.T) {
	g := graph.CommunityGraph(500, 12, 5, 0.8, 7)
	rel := buildRelation(t, g, 8, 7)
	topo := topology.DGX1()
	_, s1, _ := PlanSPST(rel, topo, 512, SPSTOptions{Seed: 9})
	_, s2, _ := PlanSPST(rel, topo, 512, SPSTOptions{Seed: 9})
	if s1.Cost() != s2.Cost() {
		t.Fatal("same seed must give identical plans")
	}
}

func TestSPSTOnTwoMachines(t *testing.T) {
	g := graph.CommunityGraph(1600, 16, 8, 0.8, 8)
	p, err := partition.Hierarchical(g, []int{8, 8}, partition.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.TwoMachineDGX1()
	plan, state, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(rel); err != nil {
		t.Fatal(err)
	}
	if state.Cost() <= 0 {
		t.Fatal("zero cost on 16-GPU plan")
	}
}

func TestSPSTKMismatch(t *testing.T) {
	g := graph.Ring(32)
	rel := buildRelation(t, g, 4, 1)
	if _, _, err := PlanSPST(rel, topology.DGX1(), 64, SPSTOptions{}); err == nil {
		t.Fatal("expected K mismatch error")
	}
}

func TestSPSTFusesMulticast(t *testing.T) {
	// A vertex needed by several GPUs should not always be sent separately
	// from its source: total bytes on the source's outgoing channels should
	// be below pure P2P for a broadcast-heavy relation.
	// Build a tiny relation by hand: GPU0 owns v0..v63, all needed by GPUs
	// 5, 6 and 7 (across the QPI on DGX-1).
	rel := &comm.Relation{
		K:     8,
		Owner: make([]int32, 64),
		Local: make([][]int32, 8), Remote: make([][]int32, 8),
		Send: make([][][]int32, 8),
	}
	for i := range rel.Send {
		rel.Send[i] = make([][]int32, 8)
	}
	var vs []int32
	for v := int32(0); v < 64; v++ {
		vs = append(vs, v)
	}
	rel.Local[0] = vs
	for _, d := range []int{5, 6, 7} {
		rel.Remote[d] = vs
		rel.Send[0][d] = vs
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	topo := topology.DGX1()
	plan, state, err := PlanSPST(rel, topo, 4096, SPSTOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(rel); err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(topo)
	p2pCost := CostOfPlan(m, planP2PForTest(rel, 4096))
	if state.Cost() >= p2pCost {
		t.Fatalf("fused multicast cost %v should beat p2p %v", state.Cost(), p2pCost)
	}
	// GPU0 should send each vertex fewer than 3 times in stage 1.
	var srcBytes int64
	for _, tr := range plan.Stages[0] {
		if tr.Src == 0 {
			srcBytes += int64(len(tr.Vertices))
		}
	}
	if srcBytes >= 3*64 {
		t.Fatalf("no fusion: source sends %d vertex copies in stage 1", srcBytes)
	}
}

// Property: SPST plans validate for arbitrary random graphs, partitions and
// GPU counts on the matching standard topology.
func TestPropertySPSTAlwaysValid(t *testing.T) {
	counts := []int{2, 4, 8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := counts[rng.Intn(len(counts))]
		n := 100 + rng.Intn(400)
		g := graph.ErdosRenyi(n, int64(6*n), seed)
		p, err := partition.KWay(g, k, partition.Options{Seed: seed})
		if err != nil {
			return false
		}
		rel, err := comm.Build(g, p)
		if err != nil {
			return false
		}
		topo := topology.SubDGX1(k)
		plan, state, err := PlanSPST(rel, topo, 128, SPSTOptions{Seed: seed, ChunkSize: 1 + rng.Intn(32)})
		if err != nil {
			return false
		}
		if plan.Validate(rel) != nil {
			return false
		}
		// Cost is finite and non-negative.
		return state.Cost() >= 0 && state.Cost() < 1e6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: SPST modeled cost never exceeds the P2P modeled cost (it can
// always fall back to direct sends).
func TestPropertySPSTNeverWorseThanP2P(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		g := graph.CommunityGraph(n, 12, 6, 0.8, seed)
		p, err := partition.KWay(g, 8, partition.Options{Seed: seed})
		if err != nil {
			return false
		}
		rel, err := comm.Build(g, p)
		if err != nil {
			return false
		}
		topo := topology.DGX1()
		m, _ := NewModel(topo)
		_, state, err := PlanSPST(rel, topo, 512, SPSTOptions{Seed: seed})
		if err != nil {
			return false
		}
		p2pCost := CostOfPlan(m, planP2PForTest(rel, 512))
		return state.Cost() <= p2pCost*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPSTDGX1(b *testing.B) {
	g := graph.WebGoogle.Generate(256, 1)
	rel := buildRelation(b, g, 8, 1)
	topo := topology.DGX1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSPSTStageCountBound(t *testing.T) {
	// §5.1: a plan has at most m-1 stages because every communication
	// strategy is a tree over m GPUs.
	g := graph.CommunityGraph(1000, 20, 8, 0.8, 33)
	rel := buildRelation(t, g, 8, 33)
	plan, _, err := PlanSPST(rel, topology.DGX1(), 1024, SPSTOptions{Seed: 33, ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStages() > 7 {
		t.Fatalf("plan has %d stages, tree bound is 7", plan.NumStages())
	}
}

func TestSPSTChunkGranularityTradeoff(t *testing.T) {
	// Coarser chunks plan faster but cannot balance better than per-vertex
	// planning: cost(chunk=256) >= cost(chunk=1) within tolerance.
	g := graph.Reddit.Generate(512, 34)
	rel := buildRelation(t, g, 8, 34)
	topo := topology.DGX1()
	_, fine, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 34, ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, coarse, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 34, ChunkSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Cost() < fine.Cost()*0.98 {
		t.Fatalf("coarse chunks (%v) should not beat per-vertex planning (%v)", coarse.Cost(), fine.Cost())
	}
}

func TestSPSTPlanIndependentOfFeatureDim(t *testing.T) {
	// The §5.1 invariance property: the same seed produces structurally
	// identical plans for different embedding widths (costs scale linearly).
	g := graph.CommunityGraph(600, 14, 6, 0.8, 35)
	rel := buildRelation(t, g, 8, 35)
	topo := topology.DGX1()
	a, sa, err := PlanSPST(rel, topo, 256, SPSTOptions{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := PlanSPST(rel, topo, 1024, SPSTOptions{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStages() != b.NumStages() {
		t.Fatalf("stage structure changed with feature dim: %d vs %d", a.NumStages(), b.NumStages())
	}
	for si := range a.Stages {
		if len(a.Stages[si]) != len(b.Stages[si]) {
			t.Fatalf("stage %d transfer count changed", si)
		}
	}
	ratio := sb.Cost() / sa.Cost()
	if math.Abs(ratio-4) > 1e-6 {
		t.Fatalf("cost should scale exactly 4x with width: got %v", ratio)
	}
}
