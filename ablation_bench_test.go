package dgcl

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// isolates one ingredient of the SPST planner or runtime and reports the
// modeled communication time it buys.

import (
	"testing"

	"dgcl/internal/baselines"
	"dgcl/internal/collective"
	"dgcl/internal/comm"
	"dgcl/internal/core"
	"dgcl/internal/graph"
	"dgcl/internal/partition"
	"dgcl/internal/simnet"
	"dgcl/internal/topology"
)

func ablationRelation(b *testing.B) (*comm.Relation, *topology.Topology) {
	b.Helper()
	g := graph.Reddit.Generate(256, 1)
	p, err := partition.KWay(g, 8, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		b.Fatal(err)
	}
	return rel, topology.DGX1()
}

// BenchmarkAblationSPSTFull is the baseline: the full SPST planner.
func BenchmarkAblationSPSTFull(b *testing.B) {
	rel, topo := ablationRelation(b)
	var cost float64
	for i := 0; i < b.N; i++ {
		_, state, err := core.PlanSPST(rel, topo, 2048, core.SPSTOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cost = state.Cost()
	}
	b.ReportMetric(cost*1e6, "modeled-us")
}

// BenchmarkAblationNoForwarding disables multi-hop relays (isolates
// "utilize fast links").
func BenchmarkAblationNoForwarding(b *testing.B) {
	rel, topo := ablationRelation(b)
	var cost float64
	for i := 0; i < b.N; i++ {
		_, state, err := core.PlanSPST(rel, topo, 2048, core.SPSTOptions{Seed: 1, DisableForwarding: true})
		if err != nil {
			b.Fatal(err)
		}
		cost = state.Cost()
	}
	b.ReportMetric(cost*1e6, "modeled-us")
}

// BenchmarkAblationTreePerSource shares one tree per source GPU (isolates
// per-vertex flexibility and fusion granularity).
func BenchmarkAblationTreePerSource(b *testing.B) {
	rel, topo := ablationRelation(b)
	var cost float64
	for i := 0; i < b.N; i++ {
		_, state, err := core.PlanSPST(rel, topo, 2048, core.SPSTOptions{Seed: 1, TreePerSource: true})
		if err != nil {
			b.Fatal(err)
		}
		cost = state.Cost()
	}
	b.ReportMetric(cost*1e6, "modeled-us")
}

// BenchmarkAblationChunkSize sweeps the planning granularity: chunk 1 is the
// paper's exact per-vertex planning, larger chunks trade balance for speed.
func BenchmarkAblationChunkSize(b *testing.B) {
	rel, topo := ablationRelation(b)
	for _, chunk := range []int{1, 4, 16, 64, 256} {
		b.Run(benchName("chunk", chunk), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				_, state, err := core.PlanSPST(rel, topo, 2048, core.SPSTOptions{Seed: 1, ChunkSize: chunk})
				if err != nil {
					b.Fatal(err)
				}
				cost = state.Cost()
			}
			b.ReportMetric(cost*1e6, "modeled-us")
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationCoordination compares decentralized flags against
// centralized master coordination (§6.1).
func BenchmarkAblationCoordination(b *testing.B) {
	rel, topo := ablationRelation(b)
	plan, _, err := core.PlanSPST(rel, topo, 2048, core.SPSTOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, centralized := range []bool{false, true} {
		name := "decentralized"
		if centralized {
			name = "centralized"
		}
		b.Run(name, func(b *testing.B) {
			cfg := simnet.DefaultConfig(1)
			cfg.Centralized = centralized
			net, err := simnet.New(topo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var t float64
			for i := 0; i < b.N; i++ {
				res, err := net.RunPlan(plan)
				if err != nil {
					b.Fatal(err)
				}
				t = res.Time
			}
			b.ReportMetric(t*1e6, "sim-us")
		})
	}
}

// BenchmarkAblationHierarchicalPartitioning compares flat vs hierarchical
// partitioning on the two-machine topology by cross-machine traffic. The
// effect shows on sparse, structured graphs; on Reddit-dense graphs nearly
// every vertex crosses machines under any split.
func BenchmarkAblationHierarchicalPartitioning(b *testing.B) {
	g := graph.WebGoogle.Generate(128, 1)
	for _, hierarchical := range []bool{true, false} {
		name := "flat"
		if hierarchical {
			name = "hierarchical"
		}
		b.Run(name, func(b *testing.B) {
			var cross int64
			for i := 0; i < b.N; i++ {
				var p *partition.Partition
				var err error
				if hierarchical {
					p, err = partition.Hierarchical(g, []int{8, 8}, partition.Options{Seed: 1})
				} else {
					p, err = partition.KWay(g, 16, partition.Options{Seed: 1})
				}
				if err != nil {
					b.Fatal(err)
				}
				rel, err := comm.Build(g, p)
				if err != nil {
					b.Fatal(err)
				}
				cross = 0
				for src := 0; src < 16; src++ {
					for dst := 0; dst < 16; dst++ {
						if (src < 8) != (dst < 8) {
							cross += int64(len(rel.Send[src][dst]))
						}
					}
				}
			}
			b.ReportMetric(float64(cross), "cross-machine-sends")
		})
	}
}

// BenchmarkAblationFeatureCaching measures the §3 strategy (1): caching
// remote layer-0 features eliminates the widest allgather of every epoch.
// The metric is modeled communication seconds per epoch with and without
// the cache (Reddit's 602-dim features make the saving large).
func BenchmarkAblationFeatureCaching(b *testing.B) {
	rel, topo := ablationRelation(b)
	net, err := simnet.New(topo, simnet.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	featureBytes := int64(graph.Reddit.FeatureDim) * 4
	hiddenBytes := int64(graph.Reddit.HiddenDim) * 4
	plan, _, err := core.PlanSPST(rel, topo, featureBytes, core.SPSTOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	epochComm := func(cacheLayer0 bool) float64 {
		var t float64
		// Forward layer 0 (features) unless cached, forward layer 1
		// (hidden), backward layer 1 (hidden).
		if !cacheLayer0 {
			p := *plan
			p.BytesPerVertex = featureBytes
			res, err := net.RunPlan(&p)
			if err != nil {
				b.Fatal(err)
			}
			t += res.Time
		}
		p := *plan
		p.BytesPerVertex = hiddenBytes
		fwd, err := net.RunPlan(&p)
		if err != nil {
			b.Fatal(err)
		}
		bwd, err := net.RunBackward(&p, true)
		if err != nil {
			b.Fatal(err)
		}
		return t + fwd.Time + bwd.Time
	}
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = epochComm(cached)
			}
			b.ReportMetric(t*1e6, "comm-us-per-epoch")
		})
	}
}

// BenchmarkAblationCollectiveVsPlanned quantifies §3's argument against
// regular collectives for GNN embedding passing: a NCCL-style allgather must
// ship every partition to every GPU, while DGCL's plan ships only the
// required remote vertices (plus relay hops).
func BenchmarkAblationCollectiveVsPlanned(b *testing.B) {
	g := graph.WebGoogle.Generate(128, 1)
	p, err := partition.KWay(g, 8, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rel, err := comm.Build(g, p)
	if err != nil {
		b.Fatal(err)
	}
	topo := topology.DGX1()
	plan, _, err := core.PlanSPST(rel, topo, 1024, core.SPSTOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var planned, full int64
	for i := 0; i < b.N; i++ {
		planned = plan.TotalBytes()
		full = collective.FullAllgatherBytes(p.Sizes(), 1024)
	}
	b.ReportMetric(float64(planned)/1e6, "planned-MB")
	b.ReportMetric(float64(full)/1e6, "collective-MB")
	b.ReportMetric(float64(full)/float64(planned), "overshoot-x")
}

// BenchmarkAblationSteiner routes every class along a static-cost Steiner
// tree (the §5.2 strawman) and reports its modeled cost next to SPST's.
func BenchmarkAblationSteiner(b *testing.B) {
	rel, topo := ablationRelation(b)
	m, err := core.NewModel(topo)
	if err != nil {
		b.Fatal(err)
	}
	var cost float64
	for i := 0; i < b.N; i++ {
		plan, err := baselines.PlanSteiner(rel, topo, 2048)
		if err != nil {
			b.Fatal(err)
		}
		cost = core.CostOfPlan(m, plan)
	}
	b.ReportMetric(cost*1e6, "modeled-us")
}
